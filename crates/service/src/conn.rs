//! Per-connection state machines for the event-loop front end.
//!
//! Each connection owns two reusable buffers and a response reorder
//! window:
//!
//! * **read side** — bytes append into a growable buffer; an incremental
//!   scan extracts complete newline-delimited frames without waiting for
//!   the whole request in one `read` (a frame may arrive one byte at a
//!   time, or many frames may coalesce into one read — both are the same
//!   code path);
//! * **response slots** — every parsed frame allocates the next sequence
//!   slot; cheap requests fill theirs inline and job responses fill theirs
//!   whenever a worker finishes, but bytes only enter the write buffer in
//!   slot order, so pipelined clients always see responses in request
//!   order even when workers complete out of order;
//! * **write side** — each response line is serialized exactly once and
//!   appended to the connection's reusable write buffer, which drains
//!   through the nonblocking socket; leftover bytes flag the connection
//!   for `EPOLLOUT` interest (write backpressure) instead of blocking the
//!   loop.
//!
//! Nothing here does readiness or queueing — the server wires those — so
//! the frame/ordering logic is unit-testable without sockets.

use crate::net::NetStream;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// A connection's read buffer grows only while a frame is incomplete;
/// past this it is a runaway (or hostile) client and the connection is
/// closed rather than buffering without bound.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Shrink oversized buffers back to this once drained, so one burst does
/// not pin memory for the connection's lifetime.
const BUF_RETAIN_BYTES: usize = 64 * 1024;

/// Incremental newline-delimited frame extraction over a reusable buffer.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes before this offset have been scanned and contain no `\n`.
    scanned: usize,
}

impl FrameBuffer {
    /// Creates an empty frame buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (complete or partial).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Extracts the next complete frame (without its trailing `\n`),
    /// or `None` while the tail is still partial.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        let nl = self.buf[self.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| self.scanned + i)?;
        let mut frame: Vec<u8> = self.buf.drain(..=nl).collect();
        frame.pop(); // the '\n'
        self.scanned = 0;
        if self.buf.capacity() > BUF_RETAIN_BYTES && self.buf.len() <= BUF_RETAIN_BYTES {
            self.buf.shrink_to(BUF_RETAIN_BYTES);
        }
        Some(frame)
    }

    /// Marks the current tail as scanned so the next scan resumes where
    /// this one stopped instead of rescanning the partial frame.
    pub fn mark_scanned(&mut self) {
        self.scanned = self.buf.len();
    }
}

/// What [`Conn::fill`] observed on the socket.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// More bytes may come later.
    Open,
    /// The peer closed its write side (EOF).
    Eof,
}

/// What [`Conn::flush`] left behind.
#[derive(Debug, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Everything buffered went out.
    Flushed,
    /// The socket refused bytes; the rest stays buffered and the
    /// connection needs writable-readiness.
    Pending,
}

/// One client connection owned by the event loop.
#[derive(Debug)]
pub struct Conn {
    stream: NetStream,
    token: u64,
    frames: FrameBuffer,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Response reorder window: front slot is `base_seq`. `None` slots
    /// are still executing in the worker pool.
    slots: VecDeque<Option<String>>,
    base_seq: u64,
    /// Jobs handed to the run queue whose responses have not come back.
    pub inflight: usize,
    /// Last moment the peer did something (bytes in) or we made progress
    /// towards it (response buffered / bytes out) — the reaper clock.
    pub last_activity: Instant,
    /// Whether the registration currently includes write interest.
    pub watching_write: bool,
    /// Peer sent EOF; tear down once in-flight responses settle.
    pub peer_closed: bool,
    /// Close the connection once the write buffer fully drains (used by
    /// protocol violations like an oversized frame).
    pub close_after_flush: bool,
}

impl Conn {
    /// Wraps an accepted, already-nonblocking stream. Raw sockets wrap
    /// into a fault-free [`NetStream`] — the fabric-armed path goes
    /// through [`Conn::from_net`].
    pub fn new(stream: TcpStream, token: u64, now: Instant) -> Conn {
        Conn::from_net(NetStream::plain(stream), token, now)
    }

    /// Wraps a fabric-provided stream (possibly armed with injected
    /// byte-level faults).
    pub fn from_net(stream: NetStream, token: u64, now: Instant) -> Conn {
        Conn {
            stream,
            token,
            frames: FrameBuffer::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            slots: VecDeque::new(),
            base_seq: 0,
            inflight: 0,
            last_activity: now,
            watching_write: false,
            peer_closed: false,
            close_after_flush: false,
        }
    }

    /// The poller token / connection id.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The underlying socket (for poller registration changes — the
    /// poller watches fd readiness; injected faults act at the byte
    /// layer above it).
    pub fn stream(&self) -> &TcpStream {
        self.stream.tcp()
    }

    /// Reads everything currently available into the frame buffer.
    ///
    /// # Errors
    ///
    /// Real socket errors only — `WouldBlock` ends the loop cleanly and
    /// EOF is reported as [`ReadOutcome::Eof`].
    pub fn fill(&mut self, scratch: &mut [u8], now: Instant) -> std::io::Result<ReadOutcome> {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.peer_closed = true;
                    return Ok(ReadOutcome::Eof);
                }
                Ok(n) => {
                    self.frames.extend(&scratch[..n]);
                    self.last_activity = now;
                    if self.frames.len() > MAX_FRAME_BYTES {
                        return Err(std::io::Error::other("frame exceeds maximum length"));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(ReadOutcome::Open)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Extracts the next complete request frame.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        let frame = self.frames.next_frame();
        if frame.is_none() {
            self.frames.mark_scanned();
        }
        frame
    }

    /// Allocates the response slot for the frame just parsed. Slots fill
    /// via [`Conn::complete`] and leave in allocation order.
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.base_seq + self.slots.len() as u64;
        self.slots.push_back(None);
        seq
    }

    /// Fills a response slot with its serialized line (no trailing
    /// newline) and moves every now-contiguous response into the write
    /// buffer — each response's bytes enter exactly once.
    pub fn complete(&mut self, seq: u64, line: String, now: Instant) {
        let idx = (seq - self.base_seq) as usize;
        debug_assert!(idx < self.slots.len(), "completion for unallocated slot");
        if let Some(slot) = self.slots.get_mut(idx) {
            debug_assert!(slot.is_none(), "slot {seq} completed twice");
            *slot = Some(line);
        }
        while let Some(Some(_)) = self.slots.front() {
            let line = self.slots.pop_front().flatten().expect("checked front");
            self.base_seq += 1;
            self.write_buf.extend_from_slice(line.as_bytes());
            self.write_buf.push(b'\n');
        }
        self.last_activity = now;
    }

    /// Whether response bytes are waiting for the socket.
    pub fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Whether the connection is quiescent (nothing queued, nothing
    /// buffered) — the only state the idle reaper may take it in.
    pub fn is_idle(&self) -> bool {
        self.inflight == 0 && !self.wants_write()
    }

    /// Writes as much buffered response data as the socket accepts.
    ///
    /// # Errors
    ///
    /// Real socket errors only; `WouldBlock` returns
    /// [`FlushOutcome::Pending`].
    pub fn flush(&mut self, now: Instant) -> std::io::Result<FlushOutcome> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.write_pos += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(FlushOutcome::Pending)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Fully drained: recycle the buffer, shedding burst capacity.
        self.write_buf.clear();
        self.write_pos = 0;
        if self.write_buf.capacity() > BUF_RETAIN_BYTES {
            self.write_buf.shrink_to(BUF_RETAIN_BYTES);
        }
        Ok(FlushOutcome::Flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_split_at_every_byte_boundary() {
        let msg = b"{\"v\":1,\"op\":\"status\"}\n";
        for split in 1..msg.len() {
            let mut fb = FrameBuffer::new();
            fb.extend(&msg[..split]);
            if split < msg.len() {
                // No complete frame until the newline arrives.
                if msg[..split].contains(&b'\n') {
                    // only the full message contains it
                    unreachable!();
                }
                assert_eq!(fb.next_frame(), None, "split at {split}");
                fb.mark_scanned();
            }
            fb.extend(&msg[split..]);
            assert_eq!(
                fb.next_frame().as_deref(),
                Some(&msg[..msg.len() - 1][..]),
                "split at {split}"
            );
            assert_eq!(fb.next_frame(), None);
        }
    }

    #[test]
    fn coalesced_frames_come_out_one_by_one() {
        let mut fb = FrameBuffer::new();
        fb.extend(b"first\nsecond\nthird");
        assert_eq!(fb.next_frame().as_deref(), Some(&b"first"[..]));
        assert_eq!(fb.next_frame().as_deref(), Some(&b"second"[..]));
        assert_eq!(fb.next_frame(), None);
        assert_eq!(fb.len(), 5); // "third" still partial
        fb.extend(b"\n");
        assert_eq!(fb.next_frame().as_deref(), Some(&b"third"[..]));
        assert!(fb.is_empty());
    }

    #[test]
    fn empty_frames_are_preserved() {
        let mut fb = FrameBuffer::new();
        fb.extend(b"\n\nx\n");
        assert_eq!(fb.next_frame().as_deref(), Some(&b""[..]));
        assert_eq!(fb.next_frame().as_deref(), Some(&b""[..]));
        assert_eq!(fb.next_frame().as_deref(), Some(&b"x"[..]));
        assert_eq!(fb.next_frame(), None);
    }

    #[test]
    fn mark_scanned_resumes_without_missing_late_newline() {
        let mut fb = FrameBuffer::new();
        fb.extend(b"abc");
        assert_eq!(fb.next_frame(), None);
        fb.mark_scanned();
        fb.extend(b"def\n");
        assert_eq!(fb.next_frame().as_deref(), Some(&b"abcdef"[..]));
    }

    fn test_conn() -> (Conn, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (Conn::new(server, 1, Instant::now()), client)
    }

    #[test]
    fn out_of_order_completions_flush_in_request_order() {
        let (mut conn, mut client) = test_conn();
        let now = Instant::now();
        let a = conn.alloc_seq();
        let b = conn.alloc_seq();
        let c = conn.alloc_seq();
        conn.complete(c, "third".into(), now);
        assert!(!conn.wants_write(), "nothing contiguous yet");
        conn.complete(a, "first".into(), now);
        assert!(conn.wants_write(), "first is ready");
        conn.complete(b, "second".into(), now);
        assert_eq!(conn.flush(now).unwrap(), FlushOutcome::Flushed);

        use std::io::Read;
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut got = String::new();
        let mut buf = [0u8; 64];
        while got.len() < "first\nsecond\nthird\n".len() {
            let n = client.read(&mut buf).unwrap();
            got.push_str(std::str::from_utf8(&buf[..n]).unwrap());
        }
        assert_eq!(got, "first\nsecond\nthird\n");
    }

    #[test]
    fn fill_reports_eof_and_keeps_buffered_tail() {
        let (mut conn, mut client) = test_conn();
        use std::io::Write;
        client.write_all(b"partial-frame-no-newline").unwrap();
        drop(client);
        let mut scratch = [0u8; 4096];
        // Poll until both the bytes and the EOF have been observed.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match conn.fill(&mut scratch, Instant::now()).unwrap() {
                ReadOutcome::Eof => break,
                ReadOutcome::Open => {
                    assert!(Instant::now() < deadline, "EOF never surfaced");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
        assert!(conn.peer_closed);
        assert_eq!(conn.next_frame(), None, "partial tail is not a frame");
        assert_eq!(conn.frames.len(), 24);
    }
}
