//! The network fault fabric: every socket the service opens goes
//! through here.
//!
//! [`NetFabric`] is the single dial/accept choke point for the client,
//! peer calls, heartbeat probes, forwarding, replication, profile
//! fetches, and both server front ends. In production it is
//! [`NetFabric::direct`] — a zero-overhead pass-through whose streams
//! cost one `Option` check per I/O call. Under chaos it carries an
//! [`Arc<NetFaultPlan>`] and returns [`NetStream`]s armed with
//! stream-level faults, so scripted partitions, truncated frames, slow
//! writers, and duplicate deliveries hit *real* sockets on real code
//! paths — deterministically, by arrival count.
//!
//! Naming convention (see [`NetFaultPlan`]): mesh members are `n0..nK`
//! in cluster-index order, plain clients are `client`, and the reserved
//! source name `in` labels inbound connections on the accept path
//! (whose true origin the listener cannot know).
//!
//! Fault semantics on an armed stream:
//!
//! * a **partition** that becomes active after the dial severs the
//!   established stream too: writes check `src → dst`, reads check
//!   `dst → src`, so one-way partitions produce genuinely asymmetric
//!   behavior (a node that can send but never hears back);
//! * **drop-after-N** spends one shared byte budget across both
//!   directions, then fails reads and writes as a reset connection;
//! * **truncate-after-N** delivers exactly N written bytes, shuts the
//!   socket down so the peer sees EOF mid-frame, and reports the
//!   crossing write as fully consumed (the classic "wire ate my tail");
//! * **slow-write** clamps each write to a chunk and stalls after it —
//!   never armed on accepted (event-loop) streams, where a sleep would
//!   stall every connection;
//! * **duplicate** captures the first newline-terminated frame written
//!   and delivers it twice; receivers must be idempotent.

use invmeas_faults::{NetFault, NetFaultPlan};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The member name the accept path uses for the (unknowable) remote end.
pub const INBOUND_NAME: &str = "in";

/// The member name used for dial targets the fabric has no name for.
pub const UNKNOWN_NAME: &str = "?";

struct FabricInner {
    plan: Option<Arc<NetFaultPlan>>,
    self_name: String,
    /// Known peer addresses and their plan names (mesh members).
    names: Vec<(SocketAddr, String)>,
}

/// The dial/accept choke point. Cheap to clone and share.
#[derive(Clone)]
pub struct NetFabric {
    inner: Arc<FabricInner>,
}

impl std::fmt::Debug for NetFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetFabric")
            .field("self_name", &self.inner.self_name)
            .field("members", &self.inner.names.len())
            .field("faulted", &self.inner.plan.is_some())
            .finish()
    }
}

impl NetFabric {
    /// The production fabric: no plan, direct sockets, named `client`.
    pub fn direct() -> NetFabric {
        NetFabric {
            inner: Arc::new(FabricInner {
                plan: None,
                self_name: "client".to_string(),
                names: Vec::new(),
            }),
        }
    }

    /// A fabric for one node (or client) of a fault-scripted topology.
    /// `names` maps peer socket addresses to their plan names; dials to
    /// unlisted addresses use [`UNKNOWN_NAME`] as the destination.
    pub fn new(
        self_name: impl Into<String>,
        names: Vec<(SocketAddr, String)>,
        plan: Option<Arc<NetFaultPlan>>,
    ) -> NetFabric {
        NetFabric {
            inner: Arc::new(FabricInner {
                plan,
                self_name: self_name.into(),
                names,
            }),
        }
    }

    /// This fabric's own plan name.
    pub fn self_name(&self) -> &str {
        &self.inner.self_name
    }

    /// The shared fault plan, when one is installed.
    pub fn plan(&self) -> Option<&Arc<NetFaultPlan>> {
        self.inner.plan.as_ref()
    }

    fn name_of(&self, addr: SocketAddr) -> &str {
        self.inner
            .names
            .iter()
            .find(|(a, _)| *a == addr)
            .map_or(UNKNOWN_NAME, |(_, n)| n.as_str())
    }

    /// Dials `peer`, consulting the fault plan first: scripted refusals
    /// and active partitions fail as [`io::ErrorKind::ConnectionRefused`]
    /// before any packet moves, scripted delays sleep, and stream-level
    /// faults arm the returned stream.
    ///
    /// # Errors
    ///
    /// Propagates the underlying connect error, or the injected refusal.
    pub fn dial(&self, peer: SocketAddr, timeout: Option<Duration>) -> io::Result<NetStream> {
        let decision = match &self.inner.plan {
            Some(plan) => plan.connect(&self.inner.self_name, self.name_of(peer)),
            None => {
                let tcp = connect_raw(peer, timeout)?;
                return Ok(NetStream { tcp, faults: None });
            }
        };
        if decision.refuse {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!(
                    "injected refusal: {} -> {}",
                    self.inner.self_name,
                    self.name_of(peer)
                ),
            ));
        }
        if decision.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(decision.delay_ms));
        }
        let tcp = connect_raw(peer, timeout)?;
        Ok(self.wrap(tcp, self.name_of(peer).to_string(), decision.faults))
    }

    /// Wraps a just-accepted connection, consulting the plan on the
    /// `in → self` edge. Returns `None` when the plan refuses it (the
    /// caller drops the socket — the dialer sees a vanished peer).
    /// Delay and slow-write faults are *not* armed here: the accept path
    /// runs on the event loop, where a sleep would stall every
    /// connection; byte-level faults (drop, truncate, duplicate) apply.
    pub fn wrap_accepted(&self, tcp: TcpStream) -> Option<NetStream> {
        let plan = match &self.inner.plan {
            Some(plan) => plan,
            None => return Some(NetStream { tcp, faults: None }),
        };
        let decision = plan.connect(INBOUND_NAME, &self.inner.self_name);
        if decision.refuse {
            return None;
        }
        let faults = decision
            .faults
            .into_iter()
            .filter(|f| !matches!(f, NetFault::SlowWrite { .. } | NetFault::Delay(_)))
            .collect();
        Some(self.wrap(tcp, INBOUND_NAME.to_string(), faults))
    }

    fn wrap(&self, tcp: TcpStream, peer_name: String, faults: Vec<NetFault>) -> NetStream {
        let plan = match &self.inner.plan {
            Some(plan) => Arc::clone(plan),
            None => return NetStream { tcp, faults: None },
        };
        let mut sf = StreamFaults {
            plan,
            src: self.inner.self_name.clone(),
            dst: peer_name,
            drop_after: None,
            slow_write: None,
            truncate_after: None,
            transferred: AtomicU64::new(0),
            written: AtomicU64::new(0),
            severed: AtomicBool::new(false),
            partition_noted: AtomicBool::new(false),
            duplicate: Mutex::new(None),
        };
        for fault in faults {
            match fault {
                NetFault::DropAfter(n) => sf.drop_after = Some(n),
                NetFault::SlowWrite { chunk, delay_ms } => {
                    sf.slow_write = Some((chunk.max(1) as usize, delay_ms));
                }
                NetFault::TruncateAfter(n) => sf.truncate_after = Some(n),
                NetFault::Duplicate => {
                    sf.duplicate = Mutex::new(Some(Vec::new()));
                }
                // Connect-time faults are handled before wrapping.
                NetFault::Refuse | NetFault::Delay(_) => {}
            }
        }
        NetStream {
            tcp,
            faults: Some(Arc::new(sf)),
        }
    }
}

fn connect_raw(peer: SocketAddr, timeout: Option<Duration>) -> io::Result<TcpStream> {
    match timeout {
        Some(t) => TcpStream::connect_timeout(&peer, t),
        None => TcpStream::connect(peer),
    }
}

/// Shared (reader/writer halves, via `try_clone`) fault state of one
/// armed stream.
struct StreamFaults {
    plan: Arc<NetFaultPlan>,
    src: String,
    dst: String,
    drop_after: Option<u64>,
    slow_write: Option<(usize, u64)>,
    truncate_after: Option<u64>,
    /// Bytes moved in either direction (drop-after budget).
    transferred: AtomicU64,
    /// Bytes written (truncate-after budget).
    written: AtomicU64,
    /// A terminal byte fault (drop/truncate) has fired.
    severed: AtomicBool,
    /// The active-partition firing has been counted once.
    partition_noted: AtomicBool,
    /// `Some(buf)` while still capturing the first written frame.
    duplicate: Mutex<Option<Vec<u8>>>,
}

impl StreamFaults {
    /// Counts a partition severing this established stream, once.
    fn note_partition(&self) {
        if !self.partition_noted.swap(true, Ordering::Relaxed) {
            self.plan.note_injected();
        }
    }

    fn partition_err(&self, a: &str, b: &str) -> io::Error {
        self.note_partition();
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("injected partition: {a} -> {b}"),
        )
    }
}

/// A stream handed out by the fabric: a raw `TcpStream` in production,
/// optionally armed with deterministic byte-level faults under chaos.
pub struct NetStream {
    tcp: TcpStream,
    faults: Option<Arc<StreamFaults>>,
}

impl std::fmt::Debug for NetStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetStream")
            .field("peer", &self.tcp.peer_addr().ok())
            .field("faulted", &self.faults.is_some())
            .finish()
    }
}

impl NetStream {
    /// Wraps a raw stream with no faults (test construction helper).
    pub fn plain(tcp: TcpStream) -> NetStream {
        NetStream { tcp, faults: None }
    }

    /// The underlying socket — for event-loop registration (the poller
    /// watches readiness on the fd; faults act at the byte layer).
    pub fn tcp(&self) -> &TcpStream {
        &self.tcp
    }

    /// Clones the handle; fault state (byte budgets, duplicate capture)
    /// is shared with the clone, as reader/writer halves must agree.
    ///
    /// # Errors
    ///
    /// Propagates the socket duplication failure.
    pub fn try_clone(&self) -> io::Result<NetStream> {
        Ok(NetStream {
            tcp: self.tcp.try_clone()?,
            faults: self.faults.clone(),
        })
    }

    /// See [`TcpStream::set_read_timeout`].
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.tcp.set_read_timeout(dur)
    }

    /// See [`TcpStream::set_write_timeout`].
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.tcp.set_write_timeout(dur)
    }

    /// See [`TcpStream::set_nodelay`].
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_nodelay(&self, on: bool) -> io::Result<()> {
        self.tcp.set_nodelay(on)
    }

    /// See [`TcpStream::set_nonblocking`].
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        self.tcp.set_nonblocking(on)
    }

    /// See [`TcpStream::shutdown`].
    ///
    /// # Errors
    ///
    /// Propagates the shutdown failure.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.tcp.shutdown(how)
    }

    /// See [`TcpStream::peer_addr`].
    ///
    /// # Errors
    ///
    /// Propagates the lookup failure.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.tcp.peer_addr()
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let f = match &self.faults {
            Some(f) => Arc::clone(f),
            None => return self.tcp.read(buf),
        };
        // Reads carry dst → src bytes: a one-way partition of the
        // *reverse* edge is what starves this direction.
        if f.plan.partitioned(&f.dst, &f.src) {
            return Err(f.partition_err(&f.dst, &f.src));
        }
        let mut limit = buf.len();
        if let Some(budget) = f.drop_after {
            if f.severed.load(Ordering::Relaxed) {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected drop",
                ));
            }
            let moved = f.transferred.load(Ordering::Relaxed);
            if moved >= budget {
                if !f.severed.swap(true, Ordering::Relaxed) {
                    f.plan.note_injected();
                    let _ = self.tcp.shutdown(Shutdown::Both);
                }
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected drop",
                ));
            }
            limit = limit.min((budget - moved) as usize);
        }
        let n = self.tcp.read(&mut buf[..limit])?;
        f.transferred.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let f = match &self.faults {
            Some(f) => Arc::clone(f),
            None => return self.tcp.write(buf),
        };
        if f.plan.partitioned(&f.src, &f.dst) {
            return Err(f.partition_err(&f.src, &f.dst));
        }
        if f.severed.load(Ordering::Relaxed) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected severed stream",
            ));
        }
        if buf.is_empty() {
            return self.tcp.write(buf);
        }
        // Truncate: deliver exactly N written bytes, then EOF the peer.
        if let Some(limit) = f.truncate_after {
            let written = f.written.load(Ordering::Relaxed);
            if written + buf.len() as u64 > limit {
                let keep = limit.saturating_sub(written) as usize;
                if keep > 0 {
                    self.tcp.write_all(&buf[..keep])?;
                }
                f.severed.store(true, Ordering::Relaxed);
                f.plan.note_injected();
                let _ = self.tcp.shutdown(Shutdown::Both);
                f.written.fetch_add(buf.len() as u64, Ordering::Relaxed);
                // The caller believes the whole buffer went out — that
                // is the point: its frame ends mid-wire.
                return Ok(buf.len());
            }
        }
        // Drop-after: the shared budget also counts written bytes.
        if let Some(budget) = f.drop_after {
            let moved = f.transferred.load(Ordering::Relaxed);
            if moved + buf.len() as u64 > budget {
                let keep = budget.saturating_sub(moved) as usize;
                if keep > 0 {
                    self.tcp.write_all(&buf[..keep])?;
                    f.transferred.fetch_add(keep as u64, Ordering::Relaxed);
                }
                if !f.severed.swap(true, Ordering::Relaxed) {
                    f.plan.note_injected();
                    let _ = self.tcp.shutdown(Shutdown::Both);
                }
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected drop",
                ));
            }
        }
        let mut chunk = buf.len();
        let mut stall = 0u64;
        if let Some((max_chunk, delay_ms)) = f.slow_write {
            chunk = chunk.min(max_chunk);
            stall = delay_ms;
        }
        let n = self.tcp.write(&buf[..chunk])?;
        f.written.fetch_add(n as u64, Ordering::Relaxed);
        f.transferred.fetch_add(n as u64, Ordering::Relaxed);
        // Duplicate delivery: re-send the first complete frame once.
        {
            let mut cap = f.duplicate.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(frame) = cap.as_mut() {
                frame.extend_from_slice(&buf[..n]);
                if let Some(pos) = frame.iter().position(|&b| b == b'\n') {
                    let dup: Vec<u8> = frame[..=pos].to_vec();
                    *cap = None;
                    drop(cap);
                    self.tcp.write_all(&dup)?;
                    f.plan.note_injected();
                }
            }
        }
        if stall > 0 {
            std::thread::sleep(Duration::from_millis(stall));
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.tcp.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dialed = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (dialed, accepted)
    }

    fn armed(plan: Arc<NetFaultPlan>, faults: Vec<NetFault>) -> (NetStream, TcpStream) {
        let (dialed, accepted) = pair();
        let fabric = NetFabric::new("n0", Vec::new(), Some(plan));
        (fabric.wrap(dialed, "n1".to_string(), faults), accepted)
    }

    #[test]
    fn plain_stream_moves_bytes_untouched() {
        let (dialed, accepted) = pair();
        let mut a = NetStream::plain(dialed);
        let mut b = NetStream::plain(accepted);
        a.write_all(b"hello\n").unwrap();
        let mut buf = [0u8; 6];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello\n");
    }

    #[test]
    fn refused_dial_fails_before_connecting() {
        let plan = Arc::new(NetFaultPlan::new(0).on_connect("n0", "n1", 1, NetFault::Refuse));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fabric = NetFabric::new("n0", vec![(addr, "n1".to_string())], Some(plan.clone()));
        let err = fabric.dial(addr, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert_eq!(plan.injected(), 1);
        // Second dial on the same edge goes through.
        assert!(fabric.dial(addr, None).is_ok());
    }

    #[test]
    fn drop_after_severs_both_directions_at_the_budget() {
        let plan = Arc::new(NetFaultPlan::new(0));
        let (mut s, mut peer) = armed(Arc::clone(&plan), vec![NetFault::DropAfter(4)]);
        s.write_all(b"abcd").unwrap(); // exactly the budget
        let err = s.write(b"e").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let mut got = Vec::new();
        peer.read_to_end(&mut got).unwrap(); // shutdown → EOF
        assert_eq!(got, b"abcd");
        assert_eq!(plan.injected(), 1);
        assert_eq!(
            s.read(&mut [0u8; 8]).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn truncate_after_delivers_partial_frame_then_eof() {
        let plan = Arc::new(NetFaultPlan::new(0));
        let (mut s, mut peer) = armed(Arc::clone(&plan), vec![NetFault::TruncateAfter(10)]);
        // The crossing write "succeeds" (the caller can't tell) but only
        // 10 bytes reach the wire, and the peer then sees EOF.
        s.write_all(b"profile-line-that-gets-cut\n").unwrap();
        let mut got = Vec::new();
        peer.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"profile-li");
        assert_eq!(
            s.write(b"more").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn slow_write_chunks_and_still_delivers_everything() {
        let plan = Arc::new(NetFaultPlan::new(0));
        let (mut s, mut peer) = armed(
            Arc::clone(&plan),
            vec![NetFault::SlowWrite {
                chunk: 3,
                delay_ms: 1,
            }],
        );
        let payload = b"0123456789\n";
        let start = std::time::Instant::now();
        s.write_all(payload).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(3),
            "stalls accumulated"
        );
        let mut got = vec![0u8; payload.len()];
        peer.read_exact(&mut got).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn duplicate_delivers_first_frame_twice() {
        let plan = Arc::new(NetFaultPlan::new(0));
        let (mut s, peer) = armed(Arc::clone(&plan), vec![NetFault::Duplicate]);
        s.write_all(b"{\"op\":\"replicate\"}\n").unwrap();
        s.write_all(b"{\"op\":\"health\"}\n").unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let reader = BufReader::new(peer);
        let lines: Vec<String> = reader.lines().map(Result::unwrap).collect();
        assert_eq!(
            lines,
            vec![
                "{\"op\":\"replicate\"}",
                "{\"op\":\"replicate\"}",
                "{\"op\":\"health\"}"
            ]
        );
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn late_partition_severs_established_streams_asymmetrically() {
        // Partition activates on the 1st matching dial *attempt* after
        // the stream exists; n0 → n1 writes die, reads (n1 → n0) live.
        let plan = Arc::new(NetFaultPlan::new(0).partition("n0", "n1", 1, 0));
        let (mut s, mut peer) = armed(Arc::clone(&plan), Vec::new());
        s.write_all(b"before\n").unwrap(); // count 0: not active yet
        plan.connect("n0", "n1"); // the activating arrival (refused dial)
        let err = s.write(b"after\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Reverse direction still flows: peer → n0.
        peer.write_all(b"reply\n").unwrap();
        let mut buf = [0u8; 6];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"reply\n");
    }

    #[test]
    fn accept_path_can_refuse_and_arms_byte_faults_only() {
        let plan = Arc::new(
            NetFaultPlan::new(0)
                .on_connect(INBOUND_NAME, "n0", 1, NetFault::Refuse)
                .on_connect(
                    INBOUND_NAME,
                    "n0",
                    2,
                    NetFault::SlowWrite {
                        chunk: 1,
                        delay_ms: 500,
                    },
                )
                .on_connect(INBOUND_NAME, "n0", 2, NetFault::DropAfter(64)),
        );
        let fabric = NetFabric::new("n0", Vec::new(), Some(plan));
        let (_d1, a1) = pair();
        assert!(fabric.wrap_accepted(a1).is_none(), "first accept refused");
        let (_d2, a2) = pair();
        let s = fabric.wrap_accepted(a2).expect("second accept admitted");
        let f = s.faults.as_ref().expect("armed");
        assert!(f.slow_write.is_none(), "no sleeps on the event loop");
        assert_eq!(f.drop_after, Some(64));
    }

    #[test]
    fn clones_share_fault_budgets() {
        let plan = Arc::new(NetFaultPlan::new(0));
        let (s, mut peer) = armed(Arc::clone(&plan), vec![NetFault::DropAfter(6)]);
        let mut w = s.try_clone().unwrap();
        let mut r = s;
        w.write_all(b"abc").unwrap();
        peer.write_all(b"def").unwrap();
        let mut buf = [0u8; 3];
        r.read_exact(&mut buf).unwrap(); // budget now fully spent
        assert_eq!(
            w.write(b"x").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }
}
