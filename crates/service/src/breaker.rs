//! Per-device circuit breaker and bounded-retry policy.
//!
//! Characterization is the service's only expensive, failure-prone
//! operation. Two cooperating mechanisms keep a flaky device from taking
//! the service down with it:
//!
//! * [`RetryPolicy`] — transient characterization failures are retried a
//!   bounded number of times with exponential backoff plus *deterministic*
//!   jitter (an FNV hash of seed, key, and attempt — no RNG state), so a
//!   replayed fault plan produces the same retry schedule every run.
//! * [`CircuitBreaker`] — after enough consecutive failures (or enough
//!   consecutive drift-threshold trips, which mean the profile keeps going
//!   stale faster than we can re-measure), the breaker *opens*: requests
//!   are served the last known-good profile with `degraded: true` instead
//!   of hammering a device that will not characterize. The open state
//!   lasts a fixed number of degraded serves (count-based, not time-based,
//!   so chaos tests replay identically), then a single *half-open* probe
//!   decides whether to close again.
//!
//! Serving a stale profile is a principled fallback, not a hack: RBMS
//! strengths are stable across calibration windows (§6.1), and averaged or
//! slightly out-of-date profiles still rank states usefully — mitigation
//! degrades gracefully rather than failing closed.

/// Breaker tuning, shared by every device's breaker.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive characterization failures (after retries) that open
    /// the breaker.
    pub failure_threshold: u32,
    /// Consecutive drift-threshold trips that open the breaker.
    pub drift_trip_threshold: u32,
    /// Degraded serves while open before a half-open probe is allowed.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            drift_trip_threshold: 4,
            cooldown: 4,
        }
    }
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: characterization attempts proceed normally.
    Closed,
    /// Tripped: requests are served stale profiles until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: exactly one probe attempt is in flight.
    HalfOpen,
}

/// A count-based circuit breaker for one device.
///
/// All transitions are driven by explicit calls (no clocks), so a fixed
/// request order replays the same transition sequence on every run.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    consecutive_drift_trips: u32,
    degraded_serves: u32,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            consecutive_drift_trips: 0,
            degraded_serves: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the breaker currently refuses characterization attempts.
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Asks permission for a characterization attempt. `true` means go
    /// ahead (closed, or a half-open probe). `false` means serve stale:
    /// the call itself counts as one degraded serve of the cooldown, and
    /// once enough have passed the breaker moves to half-open so the
    /// *next* request probes.
    pub fn allow_attempt(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.degraded_serves += 1;
                if self.degraded_serves >= self.config.cooldown {
                    self.state = BreakerState::HalfOpen;
                }
                false
            }
        }
    }

    /// Records a successful characterization (or an equivalent fresh
    /// profile from disk): closes the breaker and clears both streaks.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.consecutive_drift_trips = 0;
        self.degraded_serves = 0;
    }

    /// Records a characterization failure (retries already exhausted).
    /// Returns `true` when this failure trips the breaker open.
    pub fn record_failure(&mut self) -> bool {
        self.consecutive_failures += 1;
        // A failed half-open probe reopens immediately for a full cooldown.
        if self.state == BreakerState::HalfOpen {
            self.open();
            return true;
        }
        if self.state == BreakerState::Closed
            && self.consecutive_failures >= self.config.failure_threshold
        {
            self.open();
            return true;
        }
        false
    }

    /// Records a drift-threshold trip (a cached profile went stale from
    /// calibration drift within its window). Returns `true` when the
    /// streak trips the breaker open.
    pub fn record_drift_trip(&mut self) -> bool {
        self.consecutive_drift_trips += 1;
        if self.state == BreakerState::Closed
            && self.consecutive_drift_trips >= self.config.drift_trip_threshold
        {
            self.open();
            return true;
        }
        false
    }

    /// Clears the drift streak without touching the failure streak — a
    /// fresh cache hit proves the current profile is tracking calibration.
    pub fn note_fresh_hit(&mut self) {
        self.consecutive_drift_trips = 0;
    }

    fn open(&mut self) {
        self.state = BreakerState::Open;
        self.degraded_serves = 0;
    }
}

/// Bounded retry with exponential backoff and deterministic jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = one attempt, no retry).
    pub max_retries: u32,
    /// Base backoff in milliseconds; attempt `k` waits
    /// `base · 2^k + jitter` where `jitter < base` (all 0 when base is 0).
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 25,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based), in milliseconds.
    /// Deterministic: the jitter term is an FNV-1a hash of `(seed, key,
    /// attempt)`, not an RNG draw, so replays schedule identically.
    pub fn backoff_ms(&self, seed: u64, key: &str, attempt: u32) -> u64 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        let exp = self.base_backoff_ms.saturating_mul(1u64 << attempt.min(16));
        exp + deterministic_jitter(seed, key, attempt) % self.base_backoff_ms
    }
}

/// FNV-1a over the seed, key bytes, and attempt ordinal.
fn deterministic_jitter(seed: u64, key: &str, attempt: u32) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for b in key.bytes().chain(u64::from(attempt).to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            drift_trip_threshold: 3,
            cooldown: 2,
        })
    }

    #[test]
    fn failures_open_then_cooldown_then_half_open_probe() {
        let mut b = breaker();
        assert!(b.allow_attempt());
        assert!(!b.record_failure());
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.record_failure(), "second failure trips");
        assert_eq!(b.state(), BreakerState::Open);

        // Two degraded serves of cooldown…
        assert!(!b.allow_attempt());
        assert!(!b.allow_attempt());
        // …then the next request probes.
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow_attempt());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let mut b = breaker();
        b.record_failure();
        b.record_failure();
        assert!(b.is_open());
        b.allow_attempt();
        b.allow_attempt(); // cooldown elapsed → half-open
        assert!(b.allow_attempt(), "probe allowed");
        assert!(b.record_failure(), "failed probe reopens");
        assert!(b.is_open());
        assert!(!b.allow_attempt(), "cooldown restarts");
    }

    #[test]
    fn drift_trips_open_and_fresh_hits_reset_the_streak() {
        let mut b = breaker();
        assert!(!b.record_drift_trip());
        assert!(!b.record_drift_trip());
        b.note_fresh_hit();
        assert!(!b.record_drift_trip());
        assert!(!b.record_drift_trip());
        assert!(b.record_drift_trip(), "three consecutive trips open");
        assert!(b.is_open());
    }

    #[test]
    fn success_clears_both_streaks() {
        let mut b = breaker();
        b.record_failure();
        b.record_drift_trip();
        b.record_drift_trip();
        b.record_success();
        assert!(!b.record_failure());
        assert!(!b.record_drift_trip());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_bounded() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 10,
        };
        let a: Vec<u64> = (0..3).map(|k| p.backoff_ms(7, "ibmqx4", k)).collect();
        let b: Vec<u64> = (0..3).map(|k| p.backoff_ms(7, "ibmqx4", k)).collect();
        assert_eq!(a, b, "same inputs, same schedule");
        for (k, &ms) in a.iter().enumerate() {
            let exp = 10u64 << k;
            assert!(ms >= exp && ms < exp + 10, "attempt {k}: {ms}");
        }
        assert_ne!(
            p.backoff_ms(7, "ibmqx4", 0),
            p.backoff_ms(8, "ibmqx4", 0),
            "seed feeds the jitter"
        );
        let zero = RetryPolicy {
            max_retries: 1,
            base_backoff_ms: 0,
        };
        assert_eq!(zero.backoff_ms(1, "x", 0), 0);
    }
}
