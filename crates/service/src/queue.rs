//! Bounded MPMC job queues with non-blocking admission.
//!
//! Backpressure policy: producers never block and never buffer without
//! bound — [`BoundedQueue::try_push`] fails fast when the queue is full so
//! the connection layer can answer `503 busy` immediately. Consumers
//! (workers) block on [`BoundedQueue::pop`] until a job arrives or the
//! queue is closed *and* drained, which is exactly the graceful-shutdown
//! contract: close, let workers finish what was admitted, exit.
//!
//! Two implementations share that contract:
//!
//! * [`BoundedQueue`] — the original single Mutex+Condvar FIFO, kept for
//!   small embedders and as the reference semantics;
//! * [`ShardedQueue`] — N independently locked shards hashed by
//!   connection id with work-stealing consumers, so a hot front end never
//!   serializes every push through one lock. Capacity stays *global* (one
//!   atomic) so `503 busy` fires at exactly the same depth regardless of
//!   the shard count, and workers prefer their home shard but steal from
//!   the others before sleeping, so no shard can starve while any worker
//!   is idle.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// How far past the global capacity control-plane pushes may overflow.
/// Control ops (health, status, cluster-map, set-window) are tiny,
/// bounded in number by the connection count, and are exactly what an
/// operator needs *during* an overload — so they are never shed and get
/// this much headroom before even they hit `Full`.
const CONTROL_SLACK: usize = 64;

/// How [`ShardedQueue::try_push_or_shed`] treats an item under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedClass {
    /// Control-plane: never shed, admitted into the overflow slack even
    /// at capacity.
    Control,
    /// Work: shed earliest-deadline-impossible first. `deadline` is the
    /// absolute instant after which the job's answer is worthless
    /// (`None` = no deadline; such work is never chosen as a victim).
    Work {
        /// Absolute completion deadline, if the job carries one.
        deadline: Option<Instant>,
    },
}

/// Why [`BoundedQueue::try_push`] rejected an item (the item is handed
/// back so the caller can report on it).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue has been closed for shutdown.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity thread-safe FIFO.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current number of queued items.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Attempts to enqueue without blocking. On success returns the depth
    /// *after* insertion (for high-water-mark accounting).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both return the rejected item.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes fail, and consumers drain what
    /// remains before seeing `None`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }
}

/// What [`ShardedQueue::try_push`] reports on success, for depth-gauge
/// accounting in the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushReceipt {
    /// Items across all shards after the insertion.
    pub depth: usize,
    /// The shard the item landed in.
    pub shard: usize,
    /// Items in that shard after the insertion.
    pub shard_depth: usize,
}

/// A bounded MPMC FIFO split into independently locked shards.
///
/// Pushes hash a caller-supplied key (the connection id) to a home shard;
/// consumers scan from their own home shard and steal from the rest, so
/// ordering is FIFO *per shard* and admission order is preserved for any
/// single connection. Close/drain semantics match [`BoundedQueue`]: after
/// [`ShardedQueue::close`], pushes fail and [`ShardedQueue::pop`] hands
/// out what remains before returning `None`.
#[derive(Debug)]
pub struct ShardedQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    /// Global item count: capacity is enforced here, not per shard, so
    /// backpressure depth is independent of the shard count.
    depth: AtomicUsize,
    capacity: usize,
    closed: AtomicBool,
    steals: AtomicU64,
    /// Consumers park here when every shard is empty; producers take this
    /// lock briefly after an insert so the check-then-wait cannot miss a
    /// wakeup.
    idle: Mutex<()>,
    available: Condvar,
    sleepers: AtomicUsize,
}

impl<T> ShardedQueue<T> {
    /// Creates a queue holding at most `capacity` items across `shards`
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `shards` is 0.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        assert!(shards > 0, "need at least one shard");
        ShardedQueue {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            depth: AtomicUsize::new(0),
            capacity,
            closed: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            idle: Mutex::new(()),
            available: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        }
    }

    /// The maximum number of queued items (summed over all shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The current number of queued items across all shards.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Cross-shard steals performed by [`ShardedQueue::pop`] so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// The home shard for a connection id (splitmix64 spreads sequential
    /// ids evenly).
    fn shard_for(&self, key: u64) -> usize {
        let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % self.shards.len()
    }

    /// Attempts to enqueue without blocking, hashing `key` to a shard.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the *global* capacity is reached,
    /// [`PushError::Closed`] after [`ShardedQueue::close`]; both return
    /// the rejected item.
    pub fn try_push(&self, key: u64, item: T) -> Result<PushReceipt, PushError<T>> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(PushError::Closed(item));
        }
        // Reserve a capacity slot first; undo on rejection. This keeps
        // the full/busy threshold exact under concurrent pushes.
        let prior = self.depth.fetch_add(1, Ordering::SeqCst);
        if prior >= self.capacity {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return Err(PushError::Full(item));
        }
        let shard = self.shard_for(key);
        let shard_depth = {
            let mut items = self.shards[shard].lock().expect("queue poisoned");
            // Re-check under the shard lock: `close` sets the flag and
            // then acquires every shard lock, so an insert that saw
            // `closed == false` here is ordered before the post-close
            // drain scan and can never be stranded.
            if self.closed.load(Ordering::SeqCst) {
                drop(items);
                self.depth.fetch_sub(1, Ordering::SeqCst);
                return Err(PushError::Closed(item));
            }
            items.push_back(item);
            items.len()
        };
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(self.idle.lock().expect("queue poisoned"));
            self.available.notify_one();
        }
        Ok(PushReceipt {
            depth: prior + 1,
            shard,
            shard_depth,
        })
    }

    /// Like [`ShardedQueue::try_push`], but with priority-aware load
    /// shedding when the queue is at capacity:
    ///
    /// * **control** items ([`ShedClass::Control`]) are never shed and
    ///   are admitted into a small overflow slack past capacity, so
    ///   health checks and operator commands keep answering while the
    ///   data plane is saturated;
    /// * **work** items at capacity first try to evict a queued work
    ///   item whose deadline has *already expired* (it would only be
    ///   dequeued to answer `deadline exceeded` anyway) — the evicted
    ///   victim is handed back so the caller can answer it immediately,
    ///   and the new item takes its slot. With no expired victim the
    ///   push fails `Full` as before.
    ///
    /// Victim choice is the earliest deadline within the first shard
    /// (in index order) holding an expired item — an approximation of
    /// global earliest-deadline that keeps the scan to one shard lock
    /// at a time.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity with no sheddable victim
    /// (or a control push exhausted even the slack), [`PushError::Closed`]
    /// after [`ShardedQueue::close`]; both return the rejected item.
    pub fn try_push_or_shed(
        &self,
        key: u64,
        item: T,
        now: Instant,
        class_of: impl Fn(&T) -> ShedClass,
    ) -> Result<(PushReceipt, Option<T>), PushError<T>> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(PushError::Closed(item));
        }
        let class = class_of(&item);
        let prior = self.depth.fetch_add(1, Ordering::SeqCst);
        let mut shed = None;
        match class {
            ShedClass::Control => {
                if prior >= self.capacity + CONTROL_SLACK {
                    self.depth.fetch_sub(1, Ordering::SeqCst);
                    return Err(PushError::Full(item));
                }
            }
            ShedClass::Work { .. } if prior >= self.capacity => {
                match self.evict_expired(now, &class_of) {
                    // The victim freed a slot; our reservation stands.
                    Some(victim) => shed = Some(victim),
                    None => {
                        self.depth.fetch_sub(1, Ordering::SeqCst);
                        return Err(PushError::Full(item));
                    }
                }
            }
            ShedClass::Work { .. } => {}
        }
        let shard = self.shard_for(key);
        let shard_depth = {
            let mut items = self.shards[shard].lock().expect("queue poisoned");
            if self.closed.load(Ordering::SeqCst) {
                drop(items);
                // Closed raced in: put any victim back (its position no
                // longer matters — drain answers it either way) and
                // reject ours.
                if let Some(v) = shed.take() {
                    self.depth.fetch_add(1, Ordering::SeqCst);
                    self.shards[0].lock().expect("queue poisoned").push_front(v);
                }
                self.depth.fetch_sub(1, Ordering::SeqCst);
                return Err(PushError::Closed(item));
            }
            items.push_back(item);
            items.len()
        };
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(self.idle.lock().expect("queue poisoned"));
            self.available.notify_one();
        }
        Ok((
            PushReceipt {
                depth: self.depth.load(Ordering::SeqCst),
                shard,
                shard_depth,
            },
            shed,
        ))
    }

    /// Removes and returns the earliest-deadline expired work item from
    /// the first shard holding one, decrementing the global depth.
    fn evict_expired(&self, now: Instant, class_of: &impl Fn(&T) -> ShedClass) -> Option<T> {
        for shard in &self.shards {
            let mut items = shard.lock().expect("queue poisoned");
            let victim = items
                .iter()
                .enumerate()
                .filter_map(|(i, it)| match class_of(it) {
                    ShedClass::Work { deadline: Some(d) } if d <= now => Some((i, d)),
                    _ => None,
                })
                .min_by_key(|&(_, d)| d)
                .map(|(i, _)| i);
            if let Some(i) = victim {
                let item = items.remove(i).expect("index just found");
                self.depth.fetch_sub(1, Ordering::SeqCst);
                return Some(item);
            }
        }
        None
    }

    /// One pass over every shard starting at the consumer's home shard.
    fn scan(&self, home: usize) -> Option<T> {
        let n = self.shards.len();
        for i in 0..n {
            let shard = (home + i) % n;
            let item = self.shards[shard]
                .lock()
                .expect("queue poisoned")
                .pop_front();
            if let Some(item) = item {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                if i > 0 {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some(item);
            }
        }
        None
    }

    /// Dequeues an item, preferring the consumer's home shard
    /// (`worker % shards`) and stealing from the others before blocking.
    /// Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let home = worker % self.shards.len();
        loop {
            if let Some(item) = self.scan(home) {
                return Some(item);
            }
            if self.closed.load(Ordering::SeqCst) {
                // One rescan after observing the close: any push admitted
                // concurrently (it read `closed == false` under its shard
                // lock) completed its insert before `close` flushed that
                // lock, so this scan sees it.
                return self.scan(home);
            }
            let guard = self.idle.lock().expect("queue poisoned");
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            // Re-check under the idle lock; a producer inserting after
            // this check sees `sleepers > 0` and takes the idle lock to
            // notify, so the wait below cannot miss it.
            if self.depth.load(Ordering::SeqCst) == 0 && !self.closed.load(Ordering::SeqCst) {
                // The timeout is belt-and-braces only; correctness does
                // not depend on it.
                let _ = self
                    .available
                    .wait_timeout(guard, std::time::Duration::from_millis(100))
                    .expect("queue poisoned");
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Closes the queue: future pushes fail, and consumers drain what
    /// remains before seeing `None`. Idempotent.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Flush every shard lock: after this, any in-flight push that was
        // admitted has fully inserted, so drain scans are complete.
        for shard in &self.shards {
            drop(shard.lock().expect("queue poisoned"));
        }
        drop(self.idle.lock().expect("queue poisoned"));
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // stays ended
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..20 {
            loop {
                match q.try_push(i) {
                    Ok(_) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn sharded_capacity_is_global_not_per_shard() {
        let q = ShardedQueue::new(2, 4);
        // Two pushes from different connections land in (likely) different
        // shards, yet the third is rejected at the global capacity.
        let a = q.try_push(1, "a").unwrap();
        let b = q.try_push(2, "b").unwrap();
        assert_eq!(a.depth, 1);
        assert_eq!(b.depth, 2);
        assert_eq!(q.try_push(3, "c"), Err(PushError::Full("c")));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn sharded_per_connection_order_is_fifo() {
        let q = ShardedQueue::new(16, 4);
        for i in 0..8 {
            q.try_push(42, i).unwrap(); // one connection → one shard
        }
        for want in 0..8 {
            assert_eq!(q.pop(0), Some(want));
        }
    }

    #[test]
    fn sharded_workers_steal_from_foreign_shards() {
        let q = ShardedQueue::new(64, 8);
        for key in 0..32u64 {
            q.try_push(key, key).unwrap();
        }
        // One consumer pinned to home shard 0 drains everything.
        let mut got = Vec::new();
        q.close();
        while let Some(item) = q.pop(0) {
            got.push(item);
        }
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        assert!(q.steals() > 0, "draining 8 shards from one home must steal");
    }

    #[test]
    fn sharded_close_drains_then_ends() {
        let q = ShardedQueue::new(8, 3);
        q.try_push(1, "a").unwrap();
        q.try_push(2, "b").unwrap();
        q.close();
        assert_eq!(q.try_push(3, "c"), Err(PushError::Closed("c")));
        let mut got = vec![q.pop(0).unwrap(), q.pop(1).unwrap()];
        got.sort_unstable();
        assert_eq!(got, ["a", "b"]);
        assert_eq!(q.pop(2), None);
        assert_eq!(q.pop(0), None); // stays ended
    }

    #[derive(Debug, PartialEq, Eq)]
    struct Job(&'static str, ShedClass);

    fn class(j: &Job) -> ShedClass {
        j.1
    }

    #[test]
    fn control_pushes_overflow_capacity_but_work_does_not() {
        let now = Instant::now();
        let q = ShardedQueue::new(1, 2);
        let work = ShedClass::Work { deadline: None };
        q.try_push_or_shed(1, Job("w", work), now, class).unwrap();
        // Work at capacity with no expired victim: Full, as before.
        assert!(matches!(
            q.try_push_or_shed(2, Job("w2", work), now, class),
            Err(PushError::Full(Job("w2", _)))
        ));
        // Control rides the overflow slack.
        let (receipt, shed) = q
            .try_push_or_shed(3, Job("ctl", ShedClass::Control), now, class)
            .unwrap();
        assert!(shed.is_none());
        assert!(receipt.depth > q.capacity());
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn control_slack_is_bounded() {
        let now = Instant::now();
        let q = ShardedQueue::new(1, 1);
        let mut admitted = 0;
        loop {
            match q.try_push_or_shed(admitted, Job("c", ShedClass::Control), now, class) {
                Ok(_) => admitted += 1,
                Err(PushError::Full(_)) => break,
                Err(PushError::Closed(_)) => unreachable!(),
            }
        }
        assert_eq!(admitted as usize, q.capacity() + CONTROL_SLACK);
    }

    #[test]
    fn work_at_capacity_sheds_the_expired_victim() {
        let now = Instant::now();
        let expired = ShedClass::Work {
            deadline: Some(now - std::time::Duration::from_millis(1)),
        };
        let live = ShedClass::Work {
            deadline: Some(now + std::time::Duration::from_secs(60)),
        };
        let q = ShardedQueue::new(2, 1);
        q.try_push_or_shed(1, Job("live", live), now, class)
            .unwrap();
        q.try_push_or_shed(2, Job("expired", expired), now, class)
            .unwrap();
        // At capacity: the expired item is evicted, the live one stays.
        let (receipt, shed) = q.try_push_or_shed(3, Job("new", live), now, class).unwrap();
        assert_eq!(shed, Some(Job("expired", expired)));
        assert_eq!(receipt.depth, 2, "slot swapped, not grown");
        assert_eq!(q.depth(), 2);
        let drained: Vec<_> = [q.pop(0).unwrap(), q.pop(0).unwrap()]
            .into_iter()
            .map(|j| j.0)
            .collect();
        assert_eq!(drained, ["live", "new"]);
        // No expired victims left: back to plain Full.
        assert!(q.try_push_or_shed(4, Job("x", live), now, class).is_ok());
        assert!(q.try_push_or_shed(5, Job("y", live), now, class).is_ok());
        assert!(matches!(
            q.try_push_or_shed(6, Job("z", live), now, class),
            Err(PushError::Full(_))
        ));
    }

    #[test]
    fn deadline_free_work_is_never_shed() {
        let now = Instant::now();
        let q = ShardedQueue::new(1, 1);
        let eternal = ShedClass::Work { deadline: None };
        q.try_push_or_shed(1, Job("eternal", eternal), now, class)
            .unwrap();
        assert!(matches!(
            q.try_push_or_shed(2, Job("new", eternal), now, class),
            Err(PushError::Full(_))
        ));
        assert_eq!(q.pop(0), Some(Job("eternal", eternal)));
    }

    #[test]
    fn shed_push_respects_close() {
        let now = Instant::now();
        let q = ShardedQueue::new(4, 2);
        q.close();
        assert!(matches!(
            q.try_push_or_shed(1, Job("c", ShedClass::Control), now, class),
            Err(PushError::Closed(_))
        ));
    }

    #[test]
    fn sharded_blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(ShardedQueue::new(8, 4));
        let consumers: Vec<_> = (0..3)
            .map(|w| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0;
                    while q.pop(w).is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..100u64 {
            loop {
                match q.try_push(i, i) {
                    Ok(_) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
