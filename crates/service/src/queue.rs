//! A bounded MPMC job queue with non-blocking admission.
//!
//! Backpressure policy: producers never block and never buffer without
//! bound — [`BoundedQueue::try_push`] fails fast when the queue is full so
//! the connection layer can answer `503 busy` immediately. Consumers
//! (workers) block on [`BoundedQueue::pop`] until a job arrives or the
//! queue is closed *and* drained, which is exactly the graceful-shutdown
//! contract: close, let workers finish what was admitted, exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] rejected an item (the item is handed
/// back so the caller can report on it).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue has been closed for shutdown.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity thread-safe FIFO.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current number of queued items.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Attempts to enqueue without blocking. On success returns the depth
    /// *after* insertion (for high-water-mark accounting).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both return the rejected item.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes fail, and consumers drain what
    /// remains before seeing `None`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // stays ended
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..20 {
            loop {
                match q.try_push(i) {
                    Ok(_) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 20);
    }
}
