//! Minimal hand-rolled JSON, in the spirit of `profile_io`'s line format.
//!
//! The workspace's offline-dependency policy rules out serde, and the wire
//! protocol only needs flat-ish objects of strings, numbers, booleans, and
//! small nested maps — so this module implements exactly RFC 8259 values
//! with two deliberate restrictions:
//!
//! * objects preserve insertion order (serialization is deterministic, so
//!   integration tests can assert exact response lines);
//! * numbers are `f64` internally; integers up to 2^53 round-trip exactly,
//!   which covers every count, shot budget, and counter in the protocol.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, later duplicates rejected at parse.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience integer constructor.
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's object pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The value's array items, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON value from the full input (trailing garbage is an
    /// error — the protocol is strictly one value per line).
    ///
    /// # Errors
    ///
    /// Returns a byte-offset-tagged message on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(JsonError::at(
            *pos,
            format!("unexpected byte {:?}", *c as char),
        )),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected {word:?}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
    let n: f64 = text
        .parse()
        .map_err(|_| JsonError::at(start, format!("bad number {text:?}")))?;
    if !n.is_finite() {
        return Err(JsonError::at(start, format!("non-finite number {text:?}")));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, format!("bad \\u escape {hex:?}")))?;
                        // Surrogates are not paired — the protocol never
                        // emits them; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| JsonError::at(*pos, "surrogate \\u escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    other => {
                        return Err(JsonError::at(
                            *pos,
                            format!("bad escape {:?}", other.map(|c| *c as char)),
                        ))
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                if (c as u32) < 0x20 {
                    return Err(JsonError::at(*pos, "raw control character in string"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut pairs: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::at(*pos, "expected object key"));
        }
        let key_at = *pos;
        let key = parse_string(bytes, pos)?;
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(JsonError::at(key_at, format!("duplicate key {key:?}")));
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "{text}");
        }
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "qasm \"line1\"\nline2\ttab\\slash";
        let encoded = Json::Str(original.to_string()).to_string();
        assert!(
            !encoded.contains('\n'),
            "newlines must be escaped: {encoded}"
        );
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(original));
        assert_eq!(Json::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn objects_preserve_order_and_reject_duplicates() {
        let v = Json::parse(r#"{"b":1,"a":{"nested":[1,2,3]},"c":"x"}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"b":1,"a":{"nested":[1,2,3]},"c":"x"}"#);
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(1));
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn trailing_garbage_and_malformed_inputs_rejected() {
        for bad in [
            "{",
            "}",
            "{\"a\"}",
            "[1,",
            "\"open",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\":1}x",
            "nan",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_roundtrip_exactly() {
        let big = 9_007_199_254_740_992u64; // 2^53
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(Json::int(12345).to_string(), "12345");
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }
}
