//! Pushing profile and journal replicas to follower nodes.
//!
//! The owning node replicates two artifacts, both as their exact on-disk
//! text so followers can verify checksums before trusting a byte and the
//! whole mesh converges on *byte-identical* files:
//!
//! * the finished `rbms v2` profile, pushed right after it is persisted
//!   locally, and
//! * the `charjournal v2` characterization journal, pushed after every
//!   checkpoint append — so a follower promoted mid-characterization
//!   resumes from the owner's last completed unit instead of starting
//!   over.
//!
//! Replication is **best effort and asynchronous to correctness**: a
//! dropped replica costs a re-characterization on failover, never wrong
//! data, because every payload is checksummed end-to-end. That is what
//! keeps this path simple — no acks beyond one response line, no
//! retries, no queues. The `replicate-send` fault site can drop
//! (`Error`), bit-flip (`Corrupt`), or delay (`Latency`) any individual
//! send to prove those properties hold.

use crate::client;
use crate::cluster::HashRing;
use crate::membership::Membership;
use crate::net::NetFabric;
use crate::overload::RetryBudget;
use crate::protocol::{MethodKind, ReplicateRequest, Request};
use invmeas_faults::{Fault, FaultInjector, FaultSite};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where the profile cache hands finished artifacts for replication.
///
/// The cache calls these synchronously on its characterization path;
/// implementations must be cheap-ish and must never panic the caller —
/// all failures are swallowed (best effort, see the module docs).
pub trait ProfileReplicator: Send + Sync + std::fmt::Debug {
    /// A profile was just persisted locally as `text` (`rbms v2`).
    fn replicate_profile(&self, device: &str, method: MethodKind, window: u64, text: &str);
    /// A journal checkpoint was just appended; `text` is the full
    /// `charjournal v2` file contents after the append.
    fn replicate_journal(&self, device: &str, method: MethodKind, window: u64, text: &str);
}

/// The real mesh replicator: pushes to the device's followers over the
/// wire protocol.
///
/// Because the journal hook fires on the characterization critical path
/// (per checkpoint, under the per-key slot lock), the per-push cost is
/// kept bounded and small: connections to each follower are opened once
/// and reused across pushes (re-dialled, with a connect timeout, only
/// when the cached one has gone stale — e.g. the follower restarted or
/// idle-reaped it), and followers the membership view already considers
/// dead are skipped outright instead of paying a failed-connect penalty
/// on every checkpoint.
pub struct MeshReplicator {
    members: Vec<String>,
    self_index: usize,
    ring: HashRing,
    replication: usize,
    membership: Arc<Membership>,
    faults: Arc<dyn FaultInjector>,
    timeout: Duration,
    /// The transport every replication dial goes through — direct by
    /// default, the node's fault fabric when installed.
    fabric: NetFabric,
    /// When installed, a *redial* after a stale cached connection must
    /// spend a retry token; the first dial to a member is free.
    retry_budget: Option<Arc<RetryBudget>>,
    /// One cached connection per member, locked independently so pushes
    /// for different devices (different characterizations) never contend
    /// on one global lock.
    conns: Vec<Mutex<Option<client::Client>>>,
}

impl std::fmt::Debug for MeshReplicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeshReplicator")
            .field("members", &self.members)
            .field("self_index", &self.self_index)
            .field("replication", &self.replication)
            .finish_non_exhaustive()
    }
}

impl MeshReplicator {
    /// Builds a replicator for one node of the mesh.
    pub fn new(
        members: Vec<String>,
        self_index: usize,
        replication: usize,
        membership: Arc<Membership>,
        faults: Arc<dyn FaultInjector>,
    ) -> MeshReplicator {
        let ring = HashRing::new(&members);
        let conns = members.iter().map(|_| Mutex::new(None)).collect();
        MeshReplicator {
            members,
            self_index,
            ring,
            replication,
            membership,
            faults,
            timeout: Duration::from_secs(5),
            fabric: NetFabric::direct(),
            retry_budget: None,
            conns,
        }
    }

    /// Routes every replication dial through `fabric` (the node's fault
    /// fabric), so scripted partitions and byte faults hit this path too.
    #[must_use]
    pub fn with_fabric(mut self, fabric: NetFabric) -> MeshReplicator {
        self.fabric = fabric;
        self
    }

    /// Charges redials (a fresh dial after the cached connection went
    /// stale) against the node-wide retry budget.
    #[must_use]
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> MeshReplicator {
        self.retry_budget = Some(budget);
        self
    }

    /// Every mesh node on the device's ladder except this one. When this
    /// node is the hash-owner that is exactly the follower set; when a
    /// *promoted follower* finishes a resumed characterization it also
    /// covers the remaining ladder nodes, which is what re-converges the
    /// mesh after a failover.
    fn recipients(&self, device: &str) -> Vec<usize> {
        self.ring
            .route(device, self.replication)
            .ladder()
            .filter(|m| *m != self.self_index)
            .collect()
    }

    /// Sends one replicate request to one member, best effort, over the
    /// member's cached connection (dialling a fresh one — connect
    /// bounded by the push timeout — when none is cached or the cached
    /// one has gone stale). Returns whether a response came back at all
    /// (used only by tests).
    fn push(&self, member: usize, req: &ReplicateRequest) -> bool {
        let mut req = req.clone();
        match self.faults.check(FaultSite::ReplicateSend) {
            Some(Fault::Error(_)) => return false, // dropped on the wire
            Some(Fault::Corrupt) => {
                // The payload arrives bit-flipped; the follower's
                // checksum verification must catch it.
                if let Some(p) = req.profile.take() {
                    req.profile = Some(flip_one_ascii_bit(p));
                }
                if let Some(j) = req.journal.take() {
                    req.journal = Some(flip_one_ascii_bit(j));
                }
            }
            Some(f) => {
                f.apply_latency();
            }
            None => {}
        }
        let request = Request::Replicate(req);
        let mut slot = self.conns[member]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Warm path: the cached connection. `replicate` is idempotent, so
        // `Client::request` transparently redials once if the follower
        // dropped the idle connection (restart, idle reap) in between.
        let had_conn = slot.is_some();
        if let Some(c) = slot.as_mut() {
            if c.request(&request).is_ok() {
                self.membership.mark_seen(member);
                return true;
            }
            *slot = None; // stale beyond repair: fall through to a fresh dial
        }
        // A redial after a dead cached connection is a retry and must
        // spend a budget token; the very first dial to a member rides on
        // the push itself (the mesh has to connect *some* time).
        if had_conn {
            if let Some(budget) = self.retry_budget.as_ref() {
                if !budget.try_spend() {
                    return false;
                }
            }
        }
        let addr = &self.members[member];
        let dialled = (|| -> Result<client::Client, client::ClientError> {
            let mut c =
                client::Client::connect_via(&self.fabric, addr.as_str(), Some(self.timeout))?;
            c.request(&request)?;
            Ok(c)
        })();
        match dialled {
            Ok(c) => {
                *slot = Some(c);
                self.membership.mark_seen(member);
                true
            }
            Err(_) => false,
        }
    }

    fn replicate(&self, req: &ReplicateRequest) {
        for member in self.recipients(&req.device) {
            // A member the heartbeat view already declared dead is
            // skipped outright: this path runs per journal checkpoint
            // inside the characterization, and paying a connect timeout
            // per checkpoint for a corpse would stall the owner's own
            // progress. The member self-heals on resurrection — the next
            // checkpoint (or the finished profile) re-ships in full.
            if !self.membership.is_alive(member) {
                continue;
            }
            // Best effort per follower: a failed push is not retried —
            // the receiver counts `replication_writes` when a replica
            // actually lands on its disk.
            self.push(member, req);
        }
    }
}

impl ProfileReplicator for MeshReplicator {
    fn replicate_profile(&self, device: &str, method: MethodKind, window: u64, text: &str) {
        self.replicate(&ReplicateRequest {
            device: device.to_string(),
            method,
            window,
            profile: Some(text.to_string()),
            journal: None,
            from: self.self_index as u64,
        });
    }

    fn replicate_journal(&self, device: &str, method: MethodKind, window: u64, text: &str) {
        self.replicate(&ReplicateRequest {
            device: device.to_string(),
            method,
            window,
            profile: None,
            journal: Some(text.to_string()),
            from: self.self_index as u64,
        });
    }
}

/// Flips the low bit of one payload character, deterministically. The
/// flip lands mid-payload on an ASCII byte, so the result is still a
/// valid wire string — only the checksum disagrees.
fn flip_one_ascii_bit(s: String) -> String {
    let mut bytes = s.into_bytes();
    let mut i = bytes.len() / 2;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphanumeric() {
            bytes[i] ^= 0x01; // ASCII in, ASCII out — still valid UTF-8
            return String::from_utf8(bytes).expect("ascii flip keeps utf-8");
        }
        i += 1;
    }
    let mut s = String::from_utf8(bytes).expect("unchanged bytes");
    s.push('!'); // degenerate payload: corrupt by appending instead
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_flip_changes_exactly_one_alphanumeric_byte() {
        let orig = "rbms v2\ndevice ibmqx4\ncrc32 0badf00d\n".to_string();
        let flipped = flip_one_ascii_bit(orig.clone());
        assert_eq!(orig.len(), flipped.len());
        let diffs: Vec<_> = orig
            .bytes()
            .zip(flipped.bytes())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .collect();
        assert_eq!(diffs.len(), 1, "exactly one byte must differ");
        assert!(flipped.is_ascii());
    }

    #[test]
    fn degenerate_payload_still_corrupts() {
        assert_ne!(flip_one_ascii_bit("\n\n".into()), "\n\n");
    }
}
