//! Peer liveness tracking for the profile mesh.
//!
//! Failure detection is deliberately simple: a background thread probes
//! every peer with an inline `health` request each heartbeat interval,
//! and a peer that misses `miss_limit` *consecutive* probes is declared
//! dead. Any successful probe (or any request received from the peer)
//! resurrects it instantly. There is no gossip and no quorum — the
//! membership list is static, so each node's view only has to be good
//! enough to pick a failover owner, and the consistent-hash ladder
//! (owner, then followers in ring order) makes disagreeing views
//! converge as soon as the views do.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Lock-free per-peer liveness state.
#[derive(Debug)]
pub struct Membership {
    alive: Vec<AtomicBool>,
    missed: Vec<AtomicU32>,
    miss_limit: u32,
    self_index: usize,
}

impl Membership {
    /// Creates liveness state for `n` members; everyone starts alive
    /// (optimism costs one failed forward, pessimism costs a spurious
    /// failover).
    pub fn new(n: usize, self_index: usize, miss_limit: u32) -> Membership {
        Membership {
            alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
            missed: (0..n).map(|_| AtomicU32::new(0)).collect(),
            miss_limit: miss_limit.max(1),
            self_index,
        }
    }

    /// Number of members tracked.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// True when no members are tracked (never, in a real mesh).
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Whether `member` is currently considered alive. A node is always
    /// alive to itself.
    pub fn is_alive(&self, member: usize) -> bool {
        member == self.self_index || self.alive[member].load(Ordering::Relaxed)
    }

    /// Records a successful probe of (or any traffic from) `member`.
    /// Returns `true` when this resurrected a peer previously declared
    /// dead.
    pub fn mark_seen(&self, member: usize) -> bool {
        self.missed[member].store(0, Ordering::Relaxed);
        !self.alive[member].swap(true, Ordering::Relaxed)
    }

    /// Records a missed heartbeat. Returns `true` when this miss crossed
    /// the limit and transitioned the peer from alive to dead.
    pub fn mark_missed(&self, member: usize) -> bool {
        let misses = self.missed[member].fetch_add(1, Ordering::Relaxed) + 1;
        if misses >= self.miss_limit {
            self.alive[member].swap(false, Ordering::Relaxed)
        } else {
            false
        }
    }

    /// A point-in-time copy of every member's liveness.
    pub fn snapshot(&self) -> Vec<bool> {
        (0..self.len()).map(|m| self.is_alive(m)).collect()
    }

    /// The first alive member on a failover ladder, if any.
    pub fn first_alive(&self, ladder: impl Iterator<Item = usize>) -> Option<usize> {
        let mut ladder = ladder;
        ladder.find(|m| self.is_alive(*m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn death_requires_consecutive_misses() {
        let m = Membership::new(3, 0, 3);
        assert!(m.is_alive(1));
        assert!(!m.mark_missed(1));
        assert!(!m.mark_missed(1));
        // A success in between resets the streak.
        assert!(!m.mark_seen(1));
        assert!(!m.mark_missed(1));
        assert!(!m.mark_missed(1));
        assert!(m.mark_missed(1), "third consecutive miss kills the peer");
        assert!(!m.is_alive(1));
        // Only the transition reports true.
        assert!(!m.mark_missed(1));
        // Resurrection reports the transition back.
        assert!(m.mark_seen(1));
        assert!(m.is_alive(1));
    }

    #[test]
    fn self_is_always_alive() {
        let m = Membership::new(2, 0, 1);
        assert!(m.mark_missed(0), "raw state does transition");
        assert!(m.is_alive(0), "but a node never considers itself dead");
        assert_eq!(m.snapshot(), vec![true, true]);
    }

    #[test]
    fn first_alive_walks_the_ladder() {
        let m = Membership::new(3, 2, 1);
        m.mark_missed(0);
        assert_eq!(m.first_alive([0usize, 1, 2].into_iter()), Some(1));
        m.mark_missed(1);
        assert_eq!(m.first_alive([0usize, 1, 2].into_iter()), Some(2));
        assert_eq!(m.first_alive([0usize, 1].into_iter()), None);
    }
}
