//! The scripted fault plan: sites, fault kinds, and arrival-count firing.

use crate::FaultInjector;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of instrumented sites (array-indexed for lock-free counting).
pub const SITE_COUNT: usize = 8;

/// A place in the stack where faults can be injected.
///
/// Sites are coarse on purpose: each names one *operation class* whose
/// failure mode the resilience layer must handle, and arrival counts at a
/// site are deterministic for a fixed request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A characterization run is about to measure a profile (the cache's
    /// miss path). Supports `Error` (transient failure), `Latency`, and
    /// `Panic`.
    Characterize,
    /// A profile is about to be persisted. Supports `Torn` (partial write
    /// that must never corrupt the final path), `Error`, and `Latency`.
    ProfileWrite,
    /// A persisted profile is about to be read. Supports `Corrupt`
    /// (garbled bytes the parser must reject), `Error`, and `Latency`.
    ProfileRead,
    /// A worker picked up a job. Supports `Panic` (the job must answer
    /// 500 and the pool must survive), `Error`, and `Latency`.
    Worker,
    /// A circuit-execution batch is starting ([`Executor::run`]-level).
    /// Supports `Latency` (slow hardware) and `Panic`.
    ///
    /// [`Executor::run`]: https://docs.rs/ (see `qnoise::Executor`)
    Exec,
    /// A characterization checkpoint is about to be appended to a
    /// `charjournal v2` file. Supports `Panic` (kill mid-checkpoint — the
    /// resumed run must be bit-identical), `Torn` (a partial line lands
    /// and must be discarded on resume), `Error`, and `Latency`.
    JournalWrite,
    /// A profile or journal replica is about to be sent to a follower
    /// node. Supports `Error` (the write is dropped on the wire — the
    /// follower simply never sees it), `Corrupt` (the payload arrives
    /// bit-flipped and must fail its checksum on receipt), and `Latency`.
    ReplicateSend,
    /// A heartbeat probe is about to be sent to a peer node. Supports
    /// `Error` (the probe is dropped — a deterministic one-sided
    /// partition) and `Latency`.
    Heartbeat,
}

impl FaultSite {
    /// Every site, in index order.
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::Characterize,
        FaultSite::ProfileWrite,
        FaultSite::ProfileRead,
        FaultSite::Worker,
        FaultSite::Exec,
        FaultSite::JournalWrite,
        FaultSite::ReplicateSend,
        FaultSite::Heartbeat,
    ];

    /// The array index of this site.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FaultSite::Characterize => 0,
            FaultSite::ProfileWrite => 1,
            FaultSite::ProfileRead => 2,
            FaultSite::Worker => 3,
            FaultSite::Exec => 4,
            FaultSite::JournalWrite => 5,
            FaultSite::ReplicateSend => 6,
            FaultSite::Heartbeat => 7,
        }
    }

    /// The script spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::Characterize => "characterize",
            FaultSite::ProfileWrite => "profile-write",
            FaultSite::ProfileRead => "profile-read",
            FaultSite::Worker => "worker",
            FaultSite::Exec => "exec",
            FaultSite::JournalWrite => "journal-write",
            FaultSite::ReplicateSend => "replicate-send",
            FaultSite::Heartbeat => "heartbeat",
        }
    }

    /// Parses the script spelling.
    pub fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|site| site.as_str() == s)
    }
}

/// What happens when a scripted fault fires. The *caller* applies it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with this message (a transient, retryable
    /// failure as far as the resilience layer is concerned).
    Error(String),
    /// The operation stalls for this many milliseconds before proceeding.
    Latency(u64),
    /// The acting thread panics with this message.
    Panic(String),
    /// A write is torn mid-stream: some bytes land, then the write fails.
    /// Crash-safe writers must guarantee the *final* path never sees them.
    Torn,
    /// A read returns garbled bytes; parsers must reject, not mis-load.
    Corrupt,
}

impl Fault {
    /// If this fault is a latency injection, sleep it off and return
    /// `true`; otherwise return `false`. A convenience for sites that
    /// support latency plus other kinds.
    pub fn apply_latency(&self) -> bool {
        if let Fault::Latency(ms) = self {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
            true
        } else {
            false
        }
    }
}

/// One scheduled fault: fires on the `arrival`-th arrival (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Scheduled {
    pub(crate) arrival: u64,
    pub(crate) fault: Fault,
}

/// A seeded, scripted fault injector.
///
/// Faults are keyed by `(site, arrival count)`: the plan counts arrivals
/// at each site with an atomic counter and fires the fault scheduled for
/// that ordinal, if any. Because the trigger is the *count* and not the
/// clock or the thread identity, a fixed request order replays the exact
/// same fault sequence on every run. The seed does not drive firing — it
/// labels the scenario and feeds [`FaultPlan::jitter`] so tests can derive
/// deterministic pseudo-random values (e.g. backoff jitter expectations)
/// from the same identity.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Per-site schedules, sorted by arrival.
    pub(crate) scheduled: [Vec<Scheduled>; SITE_COUNT],
    arrivals: [AtomicU64; SITE_COUNT],
    injected: AtomicU64,
}

impl FaultPlan {
    /// Creates an empty plan with a scenario seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            scheduled: Default::default(),
            arrivals: Default::default(),
            injected: AtomicU64::new(0),
        }
    }

    /// The scenario seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedules `fault` to fire on the `arrival`-th arrival (1-based) at
    /// `site`. Replaces any fault already scheduled for that ordinal.
    ///
    /// # Panics
    ///
    /// Panics if `arrival` is 0.
    #[must_use]
    pub fn on_nth(mut self, site: FaultSite, arrival: u64, fault: Fault) -> FaultPlan {
        assert!(arrival >= 1, "arrivals are 1-based");
        let slot = &mut self.scheduled[site.index()];
        match slot.binary_search_by_key(&arrival, |s| s.arrival) {
            Ok(i) => slot[i].fault = fault,
            Err(i) => slot.insert(i, Scheduled { arrival, fault }),
        }
        self
    }

    /// How many arrivals `site` has seen so far.
    pub fn arrivals(&self, site: FaultSite) -> u64 {
        self.arrivals[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults scheduled (fired or not).
    pub fn scheduled_count(&self) -> usize {
        self.scheduled.iter().map(Vec::len).sum()
    }

    /// A deterministic pseudo-random value in `[0, bound)` derived from
    /// the plan seed, a key, and an ordinal — FNV-1a mixing, no RNG state.
    /// Returns 0 when `bound` is 0.
    pub fn jitter(&self, key: &str, ordinal: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let mut h = 0xcbf29ce484222325u64 ^ self.seed;
        for b in key.bytes().chain(ordinal.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h % bound
    }
}

impl FaultInjector for FaultPlan {
    fn check(&self, site: FaultSite) -> Option<Fault> {
        let i = site.index();
        let schedule = &self.scheduled[i];
        // Fast path: a site with nothing scheduled still counts arrivals
        // (so mixed plans stay deterministic) but allocates nothing.
        let arrival = self.arrivals[i].fetch_add(1, Ordering::Relaxed) + 1;
        let hit = schedule
            .binary_search_by_key(&arrival, |s| s.arrival)
            .ok()
            .map(|k| schedule[k].fault.clone());
        if hit.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_exact_arrival_only() {
        let plan = FaultPlan::new(1)
            .on_nth(FaultSite::Characterize, 2, Fault::Error("x".into()))
            .on_nth(FaultSite::Characterize, 4, Fault::Latency(10));
        let fired: Vec<_> = (0..5)
            .map(|_| plan.check(FaultSite::Characterize))
            .collect();
        assert_eq!(
            fired,
            vec![
                None,
                Some(Fault::Error("x".into())),
                None,
                Some(Fault::Latency(10)),
                None
            ]
        );
        assert_eq!(plan.arrivals(FaultSite::Characterize), 5);
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn sites_count_independently() {
        let plan = FaultPlan::new(0)
            .on_nth(FaultSite::Worker, 1, Fault::Panic("boom".into()))
            .on_nth(FaultSite::ProfileWrite, 1, Fault::Torn);
        assert_eq!(plan.check(FaultSite::Exec), None);
        assert_eq!(
            plan.check(FaultSite::Worker),
            Some(Fault::Panic("boom".into()))
        );
        assert_eq!(plan.check(FaultSite::ProfileWrite), Some(Fault::Torn));
        assert_eq!(plan.check(FaultSite::Worker), None);
    }

    #[test]
    fn on_nth_replaces_same_ordinal() {
        let plan = FaultPlan::new(0)
            .on_nth(FaultSite::Worker, 1, Fault::Torn)
            .on_nth(FaultSite::Worker, 1, Fault::Corrupt);
        assert_eq!(plan.scheduled_count(), 1);
        assert_eq!(plan.check(FaultSite::Worker), Some(Fault::Corrupt));
    }

    #[test]
    fn concurrent_arrivals_fire_each_fault_exactly_once() {
        let plan = std::sync::Arc::new(
            FaultPlan::new(3)
                .on_nth(FaultSite::Worker, 3, Fault::Error("a".into()))
                .on_nth(FaultSite::Worker, 7, Fault::Error("b".into())),
        );
        let fired = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let plan = std::sync::Arc::clone(&plan);
                let fired = std::sync::Arc::clone(&fired);
                s.spawn(move || {
                    for _ in 0..4 {
                        if plan.check(FaultSite::Worker).is_some() {
                            fired.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // 32 arrivals, two scheduled ordinals: exactly two fire, and the
        // plan's own ledger agrees — regardless of interleaving.
        assert_eq!(fired.load(Ordering::Relaxed), 2);
        assert_eq!(plan.injected(), 2);
        assert_eq!(plan.arrivals(FaultSite::Worker), 32);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = FaultPlan::new(9);
        let b = FaultPlan::new(9);
        for ord in 0..10 {
            let x = a.jitter("retry:ibmqx4", ord, 100);
            assert_eq!(x, b.jitter("retry:ibmqx4", ord, 100));
            assert!(x < 100);
        }
        assert_ne!(
            FaultPlan::new(1).jitter("k", 0, u64::MAX),
            FaultPlan::new(2).jitter("k", 0, u64::MAX),
            "different seeds should diverge"
        );
        assert_eq!(a.jitter("k", 0, 0), 0);
    }
}
