//! # invmeas-faults — deterministic fault injection for chaos testing
//!
//! A production mitigation service has to survive more than the happy
//! path: disks tear writes, characterization stalls, workers panic, and
//! profiles rot on disk. This crate scripts those failures so the rest of
//! the workspace can *rehearse* them deterministically:
//!
//! * [`FaultInjector`] — the hook trait production code is written
//!   against. The default implementation, [`NoFaults`], is a zero-sized
//!   type whose check inlines to `None`, so the production path pays
//!   nothing when injection is disabled.
//! * [`FaultPlan`] — a seeded, scripted injector: "on the 2nd arrival at
//!   the `characterize` site, fail; on the 3rd job, panic". Faults fire by
//!   *arrival count* at a [`FaultSite`], not by wall-clock time, so the
//!   same plan replays the same fault sequence on every run and under any
//!   thread count (as long as the driving requests are issued in a fixed
//!   order).
//! * a line-oriented text format (`faultplan v1`) so chaos scenarios can
//!   be checked into CI and replayed against a release binary.
//!
//! ```
//! use invmeas_faults::{Fault, FaultInjector, FaultPlan, FaultSite};
//!
//! let plan = FaultPlan::new(42)
//!     .on_nth(FaultSite::Characterize, 2, Fault::Error("injected".into()))
//!     .on_nth(FaultSite::Worker, 1, Fault::Panic("chaos".into()));
//! assert_eq!(plan.check(FaultSite::Characterize), None); // arrival 1
//! assert!(plan.check(FaultSite::Characterize).is_some()); // arrival 2
//! assert_eq!(plan.injected(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod netplan;
mod plan;
mod script;

pub use netplan::{jitter, ConnectDecision, NetFault, NetFaultPlan, NetPlanParseError};
pub use plan::{Fault, FaultPlan, FaultSite, SITE_COUNT};
pub use script::PlanParseError;

/// The hook production code calls at each instrumented site.
///
/// Implementations must be cheap and thread-safe: `check` is called on hot
/// paths (executor entry, worker dispatch, profile I/O) from many threads.
/// The contract is *consume-on-arrival*: each call counts as one arrival
/// at `site`, and the injector decides whether a fault fires for that
/// arrival. Callers apply the returned [`Fault`] themselves (sleep, error
/// out, panic, tear the write), which keeps this crate free of any I/O.
pub trait FaultInjector: Send + Sync + std::fmt::Debug {
    /// Registers one arrival at `site`; returns the fault to apply, if any.
    fn check(&self, site: FaultSite) -> Option<Fault>;

    /// Total faults fired so far (0 for injectors that do not count).
    fn injected(&self) -> u64 {
        0
    }
}

/// The production injector: never fires, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    #[inline(always)]
    fn check(&self, _site: FaultSite) -> Option<Fault> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_never_fires() {
        for site in FaultSite::ALL {
            assert_eq!(NoFaults.check(site), None);
        }
        assert_eq!(NoFaults.injected(), 0);
    }

    #[test]
    fn trait_objects_work() {
        let plan: std::sync::Arc<dyn FaultInjector> =
            std::sync::Arc::new(FaultPlan::new(7).on_nth(FaultSite::Worker, 1, Fault::Latency(5)));
        assert_eq!(plan.check(FaultSite::Worker), Some(Fault::Latency(5)));
        assert_eq!(plan.injected(), 1);
    }
}
