//! The scripted *network* fault plan: per-edge connect faults, partitions,
//! and the `netfaults v1` text format.
//!
//! Where [`FaultPlan`](crate::FaultPlan) injects faults at operation sites
//! (characterize, worker, journal-write…), `NetFaultPlan` injects faults at
//! the *transport* layer, keyed by the `(src, dst)` member pair of a
//! connection. The service's `net` fabric consults it at two moments:
//!
//! * **connect time** — [`NetFaultPlan::connect`] counts one arrival on the
//!   concrete `(src, dst)` edge and returns a [`ConnectDecision`]: refuse
//!   the dial, delay it, and/or arm stream-level faults (drop-after-N-bytes,
//!   slow-write throttling, truncate-mid-frame, duplicate-delivery) on the
//!   socket that results;
//! * **transfer time** — [`NetFaultPlan::partitioned`] is a pure check an
//!   established stream makes before moving bytes, so a partition that
//!   activates *after* the dial still severs the link deterministically.
//!
//! Everything fires by arrival count, never wall-clock, so a chaos scenario
//! replays bit-identically: the same plan plus the same request order yields
//! the same refusals, the same severed streams, and the same counter values.
//!
//! Member names are plain strings by convention: mesh nodes are `n0..nK`
//! (cluster index order), external clients are `client`, and the reserved
//! source name `in` labels the server's accept path. `*` is a wildcard
//! matching any name.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A malformed `netfaults v1` script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetPlanParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for NetPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netfaults error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NetPlanParseError {}

fn parse_err(line: usize, message: impl Into<String>) -> NetPlanParseError {
    NetPlanParseError {
        line,
        message: message.into(),
    }
}

/// A transport-level fault. [`Refuse`](NetFault::Refuse) and
/// [`Delay`](NetFault::Delay) act at connect time; the rest arm the
/// resulting stream and fire as bytes move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFault {
    /// The connect attempt is refused outright (`ECONNREFUSED`-alike).
    Refuse,
    /// The connect attempt succeeds after a fixed added latency (ms).
    Delay(u64),
    /// The stream delivers this many bytes in each direction, then dies
    /// (reads and writes fail as a reset connection).
    DropAfter(u64),
    /// Writes are throttled: at most `chunk` bytes land per write, each
    /// followed by a `delay_ms` stall. Total throughput ≈ chunk/delay.
    SlowWrite {
        /// Max bytes accepted per write call.
        chunk: u64,
        /// Stall after each chunk, in milliseconds.
        delay_ms: u64,
    },
    /// The stream delivers exactly this many *written* bytes, then shuts
    /// down — the peer sees EOF mid-frame and must discard the partial.
    TruncateAfter(u64),
    /// The first full frame (newline-terminated line) written on the
    /// stream is delivered twice; receivers must be idempotent.
    Duplicate,
}

/// What [`NetFaultPlan::connect`] decided for one dial attempt.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConnectDecision {
    /// Refuse the dial (partition active, or a scripted `refuse`).
    pub refuse: bool,
    /// Added latency before the dial proceeds, in milliseconds.
    pub delay_ms: u64,
    /// Stream-level faults to arm on the resulting socket.
    pub faults: Vec<NetFault>,
}

impl ConnectDecision {
    /// A decision that lets the dial through untouched.
    pub fn clean() -> ConnectDecision {
        ConnectDecision::default()
    }
}

/// One scheduled connect fault: fires on the `arrival`-th dial (1-based)
/// on a matching `(src, dst)` edge.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ConnRule {
    src: String,
    dst: String,
    arrival: u64,
    fault: NetFault,
}

/// A scripted partition keyed by `(src, dst)`, with its own arrival
/// counter: the rule counts *matching dial attempts* and is active while
/// that count lies in `[from, until]` (`until == 0` means forever). The
/// first matching attempt past `until` succeeds — that is the heal, and
/// it is counted exactly once.
#[derive(Debug)]
struct PartitionRule {
    src: String,
    dst: String,
    from: u64,
    until: u64,
    symmetric: bool,
    count: AtomicU64,
    healed: AtomicBool,
}

impl PartitionRule {
    fn matches(&self, src: &str, dst: &str) -> bool {
        let fwd = name_match(&self.src, src) && name_match(&self.dst, dst);
        let rev = self.symmetric && name_match(&self.src, dst) && name_match(&self.dst, src);
        fwd || rev
    }

    /// Whether the partition is active at the rule's *current* count,
    /// without registering an arrival.
    fn active_now(&self) -> bool {
        let c = self.count.load(Ordering::Relaxed);
        c >= self.from && (self.until == 0 || c <= self.until)
    }
}

#[inline]
fn name_match(pattern: &str, name: &str) -> bool {
    pattern == "*" || pattern == name
}

/// A seeded, scripted network fault injector. See the module docs for the
/// firing model; see [`NetFaultPlan::from_text`] for the script format.
#[derive(Debug)]
pub struct NetFaultPlan {
    seed: u64,
    conn_rules: Vec<ConnRule>,
    partitions: Vec<PartitionRule>,
    /// Dial arrivals per concrete `(src, dst)` edge.
    edges: Mutex<HashMap<(String, String), u64>>,
    injected: AtomicU64,
    healed: AtomicU64,
}

impl NetFaultPlan {
    /// Creates an empty plan with a scenario seed.
    pub fn new(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            conn_rules: Vec::new(),
            partitions: Vec::new(),
            edges: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
            healed: AtomicU64::new(0),
        }
    }

    /// The scenario seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedules `fault` to fire on the `arrival`-th dial (1-based) on the
    /// `(src, dst)` edge. `*` wildcards match any member name; arrivals
    /// are still counted per *concrete* edge.
    ///
    /// # Panics
    ///
    /// Panics if `arrival` is 0.
    #[must_use]
    pub fn on_connect(
        mut self,
        src: impl Into<String>,
        dst: impl Into<String>,
        arrival: u64,
        fault: NetFault,
    ) -> NetFaultPlan {
        assert!(arrival >= 1, "arrivals are 1-based");
        self.conn_rules.push(ConnRule {
            src: src.into(),
            dst: dst.into(),
            arrival,
            fault,
        });
        self
    }

    /// Schedules a one-way partition from `src` to `dst`, active from the
    /// `from`-th matching dial attempt through the `until`-th
    /// (`until == 0`: never heals).
    ///
    /// # Panics
    ///
    /// Panics if `from` is 0, or `until` is nonzero and below `from`.
    #[must_use]
    pub fn partition(
        self,
        src: impl Into<String>,
        dst: impl Into<String>,
        from: u64,
        until: u64,
    ) -> NetFaultPlan {
        self.add_partition(src.into(), dst.into(), from, until, false)
    }

    /// Like [`NetFaultPlan::partition`], but severing both directions.
    #[must_use]
    pub fn partition_symmetric(
        self,
        src: impl Into<String>,
        dst: impl Into<String>,
        from: u64,
        until: u64,
    ) -> NetFaultPlan {
        self.add_partition(src.into(), dst.into(), from, until, true)
    }

    fn add_partition(
        mut self,
        src: String,
        dst: String,
        from: u64,
        until: u64,
        symmetric: bool,
    ) -> NetFaultPlan {
        assert!(from >= 1, "partition windows are 1-based");
        assert!(until == 0 || until >= from, "until must be 0 or >= from");
        self.partitions.push(PartitionRule {
            src,
            dst,
            from,
            until,
            symmetric,
            count: AtomicU64::new(0),
            healed: AtomicBool::new(false),
        });
        self
    }

    /// Registers one dial attempt from `src` to `dst` and returns what the
    /// fabric should do with it. This is the only call that advances
    /// arrival counters (edge and partition alike).
    pub fn connect(&self, src: &str, dst: &str) -> ConnectDecision {
        let arrival = {
            let mut edges = self.edges.lock().unwrap_or_else(|p| p.into_inner());
            let n = edges.entry((src.to_string(), dst.to_string())).or_insert(0);
            *n += 1;
            *n
        };
        let mut decision = ConnectDecision::clean();
        for rule in &self.partitions {
            if !rule.matches(src, dst) {
                continue;
            }
            let c = rule.count.fetch_add(1, Ordering::Relaxed) + 1;
            if c >= rule.from && (rule.until == 0 || c <= rule.until) {
                decision.refuse = true;
                self.injected.fetch_add(1, Ordering::Relaxed);
            } else if rule.until != 0
                && c > rule.until
                && !rule.healed.swap(true, Ordering::Relaxed)
            {
                // The first attempt past the window is the heal: the dial
                // goes through and the partition is retired for good.
                self.healed.fetch_add(1, Ordering::Relaxed);
            }
        }
        for rule in &self.conn_rules {
            if rule.arrival != arrival || !name_match(&rule.src, src) || !name_match(&rule.dst, dst)
            {
                continue;
            }
            self.injected.fetch_add(1, Ordering::Relaxed);
            match &rule.fault {
                NetFault::Refuse => decision.refuse = true,
                NetFault::Delay(ms) => decision.delay_ms += ms,
                stream => decision.faults.push(stream.clone()),
            }
        }
        decision
    }

    /// Whether a partition currently severs `src → dst`, *without*
    /// registering an arrival — the check an established stream makes
    /// before moving bytes.
    pub fn partitioned(&self, src: &str, dst: &str) -> bool {
        self.partitions
            .iter()
            .any(|r| r.matches(src, dst) && r.active_now())
    }

    /// How many dial attempts the concrete `(src, dst)` edge has seen.
    pub fn edge_arrivals(&self, src: &str, dst: &str) -> u64 {
        let edges = self.edges.lock().unwrap_or_else(|p| p.into_inner());
        edges
            .get(&(src.to_string(), dst.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Registers one stream-level fault firing (drop, truncate, duplicate
    /// delivery…) — called by the fabric, which owns the streams.
    pub fn note_injected(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Total network faults fired so far (refused dials, partition hits,
    /// and stream-level firings reported via [`NetFaultPlan::note_injected`]).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// How many scripted partitions have healed (reached the end of their
    /// window and let a dial through). Each rule heals at most once.
    pub fn partitions_healed(&self) -> u64 {
        self.healed.load(Ordering::Relaxed)
    }

    /// Total rules scheduled (partitions plus connect faults).
    pub fn scheduled_count(&self) -> usize {
        self.partitions.len() + self.conn_rules.len()
    }

    /// A deterministic pseudo-random value in `[0, bound)` derived from
    /// the plan seed, a key, and an ordinal — same FNV-1a mixing as
    /// [`FaultPlan::jitter`](crate::FaultPlan::jitter). Returns 0 when
    /// `bound` is 0.
    pub fn jitter(&self, key: &str, ordinal: u64, bound: u64) -> u64 {
        jitter(self.seed, key, ordinal, bound)
    }

    /// Serializes the plan's rules to the `netfaults v1` text format
    /// (arrival counters are runtime state and are not persisted).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "netfaults v1");
        let _ = writeln!(out, "seed {}", self.seed);
        for r in &self.partitions {
            let _ = write!(out, "partition {} {} {} {}", r.src, r.dst, r.from, r.until);
            let _ = if r.symmetric {
                writeln!(out, " sym")
            } else {
                writeln!(out)
            };
        }
        for r in &self.conn_rules {
            let _ = write!(out, "conn {} {} {} ", r.src, r.dst, r.arrival);
            let _ = match &r.fault {
                NetFault::Refuse => writeln!(out, "refuse"),
                NetFault::Delay(ms) => writeln!(out, "latency {ms}"),
                NetFault::DropAfter(n) => writeln!(out, "drop-after {n}"),
                NetFault::SlowWrite { chunk, delay_ms } => {
                    writeln!(out, "slow-write {chunk} {delay_ms}")
                }
                NetFault::TruncateAfter(n) => writeln!(out, "truncate-after {n}"),
                NetFault::Duplicate => writeln!(out, "duplicate"),
            };
        }
        out
    }

    /// Parses a plan from the `netfaults v1` text format:
    ///
    /// ```text
    /// netfaults v1
    /// seed 42
    /// # partition  src dst from until   (until 0 = forever; `sym` = both ways)
    /// partition n0 n1 3 10
    /// partition n1 n2 1 0 sym
    /// # conn  src dst arrival kind [args…]
    /// conn client n0 2 refuse
    /// conn n0 n1 1 latency 50
    /// conn n0 n1 2 drop-after 128
    /// conn n0 n2 1 slow-write 16 20
    /// conn n0 n1 3 truncate-after 100
    /// conn client n0 4 duplicate
    /// ```
    ///
    /// Blank lines and `#` comments are ignored; member names must not
    /// contain spaces; `*` is a wildcard.
    ///
    /// # Errors
    ///
    /// Returns a [`NetPlanParseError`] naming the offending line on a bad
    /// header, unknown directive or fault kind, or malformed numbers.
    pub fn from_text(text: &str) -> Result<NetFaultPlan, NetPlanParseError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty plan"))?;
        if header.trim() != "netfaults v1" {
            return Err(parse_err(1, format!("bad header {header:?}")));
        }
        let mut plan = NetFaultPlan::new(0);
        for (idx, raw) in lines {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            match words[0] {
                "seed" => {
                    plan.seed = words
                        .get(1)
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| parse_err(lineno, "seed needs an integer"))?;
                }
                "partition" => {
                    if words.len() < 5 {
                        return Err(parse_err(lineno, "partition needs: src dst from until"));
                    }
                    let from: u64 = words[3]
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| parse_err(lineno, "from must be a positive integer"))?;
                    let until: u64 = words[4]
                        .parse()
                        .ok()
                        .filter(|&n| n == 0 || n >= from)
                        .ok_or_else(|| parse_err(lineno, "until must be 0 or >= from"))?;
                    let symmetric = match words.get(5) {
                        None => false,
                        Some(&"sym") => true,
                        Some(other) => {
                            return Err(parse_err(
                                lineno,
                                format!("unknown partition flag {other:?}"),
                            ))
                        }
                    };
                    plan = plan.add_partition(
                        words[1].to_string(),
                        words[2].to_string(),
                        from,
                        until,
                        symmetric,
                    );
                }
                "conn" => {
                    if words.len() < 5 {
                        return Err(parse_err(lineno, "conn needs: src dst arrival kind"));
                    }
                    let arrival: u64 =
                        words[3].parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            parse_err(lineno, "arrival must be a positive integer")
                        })?;
                    let need = |i: usize, what: &str| -> Result<u64, NetPlanParseError> {
                        words
                            .get(i)
                            .and_then(|w| w.parse().ok())
                            .ok_or_else(|| parse_err(lineno, format!("{} needs {what}", words[4])))
                    };
                    let fault = match words[4] {
                        "refuse" => NetFault::Refuse,
                        "latency" => NetFault::Delay(need(5, "milliseconds")?),
                        "drop-after" => NetFault::DropAfter(need(5, "a byte count")?),
                        "slow-write" => NetFault::SlowWrite {
                            chunk: need(5, "a chunk size and stall ms")?,
                            delay_ms: need(6, "a chunk size and stall ms")?,
                        },
                        "truncate-after" => NetFault::TruncateAfter(need(5, "a byte count")?),
                        "duplicate" => NetFault::Duplicate,
                        other => {
                            return Err(parse_err(lineno, format!("unknown fault kind {other:?}")))
                        }
                    };
                    plan = plan.on_connect(words[1], words[2], arrival, fault);
                }
                other => return Err(parse_err(lineno, format!("unknown directive {other:?}"))),
            }
        }
        Ok(plan)
    }

    /// Loads a plan from a file.
    ///
    /// # Errors
    ///
    /// Returns the I/O or parse failure as a boxed error.
    pub fn load(
        path: impl AsRef<std::path::Path>,
    ) -> Result<NetFaultPlan, Box<dyn std::error::Error + Send + Sync>> {
        let text = std::fs::read_to_string(path)?;
        Ok(NetFaultPlan::from_text(&text)?)
    }
}

/// Free-function jitter with the same mixing as [`FaultPlan::jitter`]
/// (FNV-1a over the seed, a key, and an ordinal), usable by overload
/// control without holding a plan.
///
/// [`FaultPlan::jitter`]: crate::FaultPlan::jitter
pub fn jitter(seed: u64, key: &str, ordinal: u64, bound: u64) -> u64 {
    if bound == 0 {
        return 0;
    }
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for b in key.bytes().chain(ordinal.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h % bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_rules_fire_on_exact_edge_arrival() {
        let plan = NetFaultPlan::new(1)
            .on_connect("n0", "n1", 2, NetFault::Refuse)
            .on_connect("n0", "n1", 3, NetFault::Delay(40));
        assert_eq!(plan.connect("n0", "n1"), ConnectDecision::clean());
        let d = plan.connect("n0", "n1");
        assert!(d.refuse);
        let d = plan.connect("n0", "n1");
        assert!(!d.refuse);
        assert_eq!(d.delay_ms, 40);
        assert_eq!(plan.connect("n0", "n1"), ConnectDecision::clean());
        assert_eq!(plan.edge_arrivals("n0", "n1"), 4);
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn edges_count_independently() {
        let plan = NetFaultPlan::new(0).on_connect("n0", "n1", 2, NetFault::Refuse);
        // Arrivals on other edges do not advance (n0, n1).
        assert!(!plan.connect("n1", "n0").refuse);
        assert!(!plan.connect("n0", "n2").refuse);
        assert!(!plan.connect("n0", "n1").refuse);
        assert!(plan.connect("n0", "n1").refuse);
        assert_eq!(plan.edge_arrivals("n1", "n0"), 1);
        assert_eq!(plan.edge_arrivals("n0", "n1"), 2);
    }

    #[test]
    fn wildcards_match_any_name_but_count_per_edge() {
        let plan = NetFaultPlan::new(0).on_connect("*", "n1", 1, NetFault::Duplicate);
        let d = plan.connect("client", "n1");
        assert_eq!(d.faults, vec![NetFault::Duplicate]);
        // First arrival on a *different* concrete edge also fires: the
        // rule is per-edge-ordinal, not a one-shot.
        let d = plan.connect("n2", "n1");
        assert_eq!(d.faults, vec![NetFault::Duplicate]);
        assert!(plan.connect("client", "n1").faults.is_empty());
        assert!(plan.connect("n1", "n0").faults.is_empty());
    }

    #[test]
    fn partition_window_refuses_then_heals_once() {
        let plan = NetFaultPlan::new(0).partition("n0", "n1", 2, 3);
        assert!(!plan.connect("n0", "n1").refuse); // attempt 1: before window
        assert!(plan.connect("n0", "n1").refuse); // 2: active
        assert!(plan.connect("n0", "n1").refuse); // 3: active
        assert_eq!(plan.partitions_healed(), 0);
        assert!(!plan.connect("n0", "n1").refuse); // 4: heal
        assert_eq!(plan.partitions_healed(), 1);
        assert!(!plan.connect("n0", "n1").refuse); // stays healed
        assert_eq!(plan.partitions_healed(), 1, "heal counts exactly once");
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn forever_partition_never_heals() {
        let plan = NetFaultPlan::new(0).partition("n0", "n1", 1, 0);
        for _ in 0..10 {
            assert!(plan.connect("n0", "n1").refuse);
        }
        assert_eq!(plan.partitions_healed(), 0);
        assert!(plan.partitioned("n0", "n1"));
        assert!(!plan.partitioned("n1", "n0"), "one-way only");
    }

    #[test]
    fn symmetric_partition_severs_both_directions() {
        let plan = NetFaultPlan::new(0).partition_symmetric("n0", "n1", 1, 2);
        assert!(plan.connect("n0", "n1").refuse); // rule count 1
        assert!(plan.connect("n1", "n0").refuse); // rule count 2 (reverse matches)
        assert!(!plan.connect("n0", "n1").refuse); // count 3: healed
        assert_eq!(plan.partitions_healed(), 1);
        assert_eq!(plan.edge_arrivals("n0", "n1"), 2);
        assert_eq!(plan.edge_arrivals("n1", "n0"), 1);
    }

    #[test]
    fn partitioned_is_a_pure_check() {
        let plan = NetFaultPlan::new(0).partition("n0", "n1", 2, 0);
        assert!(!plan.partitioned("n0", "n1")); // count 0: not yet active
        assert!(!plan.partitioned("n0", "n1")); // still 0 — no arrival registered
        plan.connect("n0", "n1");
        assert!(!plan.partitioned("n0", "n1")); // count 1 < from
        plan.connect("n0", "n1");
        assert!(plan.partitioned("n0", "n1")); // count 2: active, forever
        assert!(plan.partitioned("n0", "n1"));
        assert_eq!(plan.edge_arrivals("n0", "n1"), 2);
    }

    #[test]
    fn stream_faults_arm_together() {
        let plan = NetFaultPlan::new(0)
            .on_connect("n0", "n1", 1, NetFault::DropAfter(100))
            .on_connect(
                "n0",
                "n1",
                1,
                NetFault::SlowWrite {
                    chunk: 8,
                    delay_ms: 5,
                },
            );
        let d = plan.connect("n0", "n1");
        assert!(!d.refuse);
        assert_eq!(
            d.faults,
            vec![
                NetFault::DropAfter(100),
                NetFault::SlowWrite {
                    chunk: 8,
                    delay_ms: 5
                }
            ]
        );
        assert_eq!(plan.injected(), 2);
        plan.note_injected();
        assert_eq!(plan.injected(), 3);
    }

    #[test]
    fn script_roundtrips() {
        const SCRIPT: &str = "\
netfaults v1
seed 42

# sever the owner from its first follower for two dials
partition n0 n1 3 10
partition n1 n2 1 0 sym
conn client n0 2 refuse
conn n0 n1 1 latency 50
conn n0 n1 2 drop-after 128
conn n0 n2 1 slow-write 16 20
conn n0 n1 3 truncate-after 100
conn client n0 4 duplicate
";
        let plan = NetFaultPlan::from_text(SCRIPT).unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.scheduled_count(), 8);
        let text = plan.to_text();
        let back = NetFaultPlan::from_text(&text).unwrap();
        assert_eq!(back.seed(), 42);
        assert_eq!(back.to_text(), text);
        // Spot-check the parsed rules fire as scripted.
        assert_eq!(back.connect("n0", "n1").delay_ms, 50);
        assert_eq!(
            back.connect("n0", "n1").faults,
            vec![NetFault::DropAfter(128)]
        );
        assert!(
            back.connect("n1", "n2").refuse,
            "symmetric forever partition"
        );
        assert!(back.connect("n2", "n1").refuse);
    }

    #[test]
    fn parse_errors_name_lines() {
        let cases = [
            ("", "empty plan"),
            ("nope", "bad header"),
            ("netfaults v1\nseed x", "seed needs an integer"),
            ("netfaults v1\nwarp n0 n1 1 refuse", "unknown directive"),
            ("netfaults v1\npartition n0 n1", "partition needs"),
            (
                "netfaults v1\npartition n0 n1 0 0",
                "from must be a positive integer",
            ),
            (
                "netfaults v1\npartition n0 n1 3 2",
                "until must be 0 or >= from",
            ),
            (
                "netfaults v1\npartition n0 n1 1 2 both",
                "unknown partition flag",
            ),
            ("netfaults v1\nconn n0 n1 1", "conn needs"),
            (
                "netfaults v1\nconn n0 n1 0 refuse",
                "arrival must be a positive integer",
            ),
            ("netfaults v1\nconn n0 n1 1 explode", "unknown fault kind"),
            (
                "netfaults v1\nconn n0 n1 1 latency",
                "latency needs milliseconds",
            ),
            (
                "netfaults v1\nconn n0 n1 1 slow-write 16",
                "slow-write needs",
            ),
            (
                "netfaults v1\nconn n0 n1 1 drop-after soon",
                "drop-after needs a byte count",
            ),
        ];
        for (text, expect) in cases {
            let err = NetFaultPlan::from_text(text).unwrap_err().to_string();
            assert!(err.contains(expect), "{text:?}: {err}");
        }
        let err =
            NetFaultPlan::from_text("netfaults v1\nseed 1\nconn n0 n1 1 explode").unwrap_err();
        assert_eq!(err.line, 3, "errors carry the 1-based line number");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let plan = NetFaultPlan::new(9);
        for ord in 0..10 {
            let x = plan.jitter("dial:n2", ord, 100);
            assert_eq!(x, jitter(9, "dial:n2", ord, 100));
            assert!(x < 100);
        }
        assert_ne!(jitter(1, "k", 0, u64::MAX), jitter(2, "k", 0, u64::MAX));
        assert_eq!(jitter(9, "k", 0, 0), 0);
    }
}
