//! The `faultplan v1` text format — chaos scenarios as checked-in files.
//!
//! Line-oriented, in the spirit of `profile_io`'s `rbms v1`:
//!
//! ```text
//! faultplan v1
//! seed 42
//! # site  arrival  kind  [argument…]
//! characterize 1 latency 200
//! characterize 2 error injected characterization failure
//! profile-write 1 torn
//! profile-read 1 corrupt
//! worker 3 panic chaos monkey
//! ```
//!
//! Blank lines and `#` comments are ignored. `error` and `panic` take the
//! rest of the line as the message (a default is supplied when omitted);
//! `latency` takes milliseconds; `torn` and `corrupt` take nothing.

use crate::plan::{Fault, FaultPlan, FaultSite};
use std::fmt;

/// A malformed fault-plan script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault-plan error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for PlanParseError {}

fn parse_err(line: usize, message: impl Into<String>) -> PlanParseError {
    PlanParseError {
        line,
        message: message.into(),
    }
}

impl FaultPlan {
    /// Serializes the plan's schedule to the text format (arrival
    /// counters are runtime state and are not persisted).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "faultplan v1");
        let _ = writeln!(out, "seed {}", self.seed());
        for site in FaultSite::ALL {
            for s in &self.scheduled[site.index()] {
                let _ = write!(out, "{} {} ", site.as_str(), s.arrival);
                let _ = match &s.fault {
                    Fault::Error(m) => writeln!(out, "error {m}"),
                    Fault::Latency(ms) => writeln!(out, "latency {ms}"),
                    Fault::Panic(m) => writeln!(out, "panic {m}"),
                    Fault::Torn => writeln!(out, "torn"),
                    Fault::Corrupt => writeln!(out, "corrupt"),
                };
            }
        }
        out
    }

    /// Parses a plan from the text format.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanParseError`] naming the offending line on a bad
    /// header, unknown site or fault kind, or malformed arrival/latency.
    pub fn from_text(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty plan"))?;
        if header.trim() != "faultplan v1" {
            return Err(parse_err(1, format!("bad header {header:?}")));
        }
        let mut seed = 0u64;
        let mut entries: Vec<(FaultSite, u64, Fault)> = Vec::new();
        for (idx, raw) in lines {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.splitn(2, ' ');
            let first = words.next().expect("non-empty line");
            if first == "seed" {
                seed = words
                    .next()
                    .and_then(|w| w.trim().parse().ok())
                    .ok_or_else(|| parse_err(lineno, "seed needs an integer"))?;
                continue;
            }
            let site = FaultSite::parse(first)
                .ok_or_else(|| parse_err(lineno, format!("unknown site {first:?}")))?;
            let rest = words.next().unwrap_or("");
            let mut rest_words = rest.splitn(2, ' ');
            let arrival: u64 = rest_words
                .next()
                .and_then(|w| w.parse().ok())
                .filter(|&n| n >= 1)
                .ok_or_else(|| parse_err(lineno, "arrival must be a positive integer"))?;
            let kind_and_arg = rest_words.next().unwrap_or("");
            let mut ka = kind_and_arg.splitn(2, ' ');
            let kind = ka.next().unwrap_or("");
            let arg = ka.next().map(str::trim).filter(|a| !a.is_empty());
            let fault = match kind {
                "error" => Fault::Error(arg.unwrap_or("injected fault").to_string()),
                "panic" => Fault::Panic(arg.unwrap_or("injected panic").to_string()),
                "latency" => Fault::Latency(
                    arg.and_then(|a| a.parse().ok())
                        .ok_or_else(|| parse_err(lineno, "latency needs milliseconds"))?,
                ),
                "torn" => Fault::Torn,
                "corrupt" => Fault::Corrupt,
                other => return Err(parse_err(lineno, format!("unknown fault kind {other:?}"))),
            };
            entries.push((site, arrival, fault));
        }
        let mut plan = FaultPlan::new(seed);
        for (site, arrival, fault) in entries {
            plan = plan.on_nth(site, arrival, fault);
        }
        Ok(plan)
    }

    /// Loads a plan from a file.
    ///
    /// # Errors
    ///
    /// Returns the I/O or parse failure as a boxed error.
    pub fn load(
        path: impl AsRef<std::path::Path>,
    ) -> Result<FaultPlan, Box<dyn std::error::Error + Send + Sync>> {
        let text = std::fs::read_to_string(path)?;
        Ok(FaultPlan::from_text(&text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultInjector;

    const SCRIPT: &str = "\
faultplan v1
seed 42

# slow then failing characterization
characterize 1 latency 200
characterize 2 error injected characterization failure
profile-write 1 torn
profile-read 1 corrupt
worker 3 panic chaos monkey
";

    #[test]
    fn script_roundtrips() {
        let plan = FaultPlan::from_text(SCRIPT).unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.scheduled_count(), 5);
        let text = plan.to_text();
        let back = FaultPlan::from_text(&text).unwrap();
        assert_eq!(back.seed(), 42);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn parsed_plan_fires_as_scripted() {
        let plan = FaultPlan::from_text(SCRIPT).unwrap();
        assert_eq!(
            plan.check(FaultSite::Characterize),
            Some(Fault::Latency(200))
        );
        assert_eq!(
            plan.check(FaultSite::Characterize),
            Some(Fault::Error("injected characterization failure".into()))
        );
        assert_eq!(plan.check(FaultSite::ProfileWrite), Some(Fault::Torn));
        assert_eq!(plan.check(FaultSite::ProfileRead), Some(Fault::Corrupt));
        assert_eq!(plan.check(FaultSite::Worker), None);
        assert_eq!(plan.check(FaultSite::Worker), None);
        assert_eq!(
            plan.check(FaultSite::Worker),
            Some(Fault::Panic("chaos monkey".into()))
        );
    }

    #[test]
    fn seed_line_may_follow_schedule_lines() {
        let plan = FaultPlan::from_text("faultplan v1\nworker 1 torn\nseed 9\n").unwrap();
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.scheduled_count(), 1);
    }

    #[test]
    fn default_messages_apply() {
        let plan = FaultPlan::from_text("faultplan v1\nworker 1 error\nworker 2 panic\n").unwrap();
        assert_eq!(
            plan.check(FaultSite::Worker),
            Some(Fault::Error("injected fault".into()))
        );
        assert_eq!(
            plan.check(FaultSite::Worker),
            Some(Fault::Panic("injected panic".into()))
        );
    }

    #[test]
    fn parse_errors_name_lines() {
        let cases = [
            ("", "empty plan"),
            ("nope", "bad header"),
            ("faultplan v1\nseed x", "seed needs an integer"),
            ("faultplan v1\nmars 1 torn", "unknown site"),
            (
                "faultplan v1\nworker 0 torn",
                "arrival must be a positive integer",
            ),
            (
                "faultplan v1\nworker x torn",
                "arrival must be a positive integer",
            ),
            ("faultplan v1\nworker 1 explode", "unknown fault kind"),
            (
                "faultplan v1\nworker 1 latency",
                "latency needs milliseconds",
            ),
            (
                "faultplan v1\nworker 1 latency soon",
                "latency needs milliseconds",
            ),
        ];
        for (text, expect) in cases {
            let err = FaultPlan::from_text(text).unwrap_err().to_string();
            assert!(err.contains(expect), "{text:?}: {err}");
        }
    }
}
