//! Static Invert-and-Measure (SIM) — paper §5.
//!
//! SIM needs no knowledge of the application or the machine. It divides the
//! trial budget into groups, executes each group under a different fixed
//! inversion string, XOR-corrects each group's log, and merges. A state
//! that is vulnerable in one measurement mode is strong in another, so the
//! merged log sees (approximately) the *average* measurement error instead
//! of the worst case.
//!
//! The paper's configuration uses four strings — standard, full, even-bit
//! and odd-bit inversion — splitting the Hamming space into four parts
//! (§5.3). [`StaticInvertMeasure::two_mode`] and
//! [`StaticInvertMeasure::four_mode`] build the two configurations studied
//! in the evaluation; arbitrary string sets are supported for the
//! mode-count ablation.
//!
//! **Cost note:** every SIM group is the same base circuit with a trailing
//! X layer, and groups are executed through one
//! [`qnoise::Executor::run_groups`] call — so in the readout-only regime a
//! k-group run performs exactly *one* statevector simulation, with each
//! group's distribution derived by XOR permutation (see the
//! variant-amortization notes in `qnoise::executor`).

use crate::inversion::InversionString;
use crate::policy::{split_shots, MeasurementPolicy};
use qnoise::Executor;
use qsim::{Circuit, Counts};
use rand::RngCore;

/// The SIM policy: a fixed set of inversion strings sharing the budget.
///
/// # Examples
///
/// The worked example of the paper's Figure 7/8: SIM recovers a correct
/// answer that the baseline masks. Here, on a machine with a strong 1→0
/// bias, SIM measures the all-ones output far more reliably:
///
/// ```
/// use invmeas::{Baseline, MeasurementPolicy, StaticInvertMeasure};
/// use qnoise::{DeviceModel, NoisyExecutor};
/// use qsim::{BitString, Circuit};
/// use rand::SeedableRng;
///
/// let device = DeviceModel::ibmqx2();
/// let exec = NoisyExecutor::readout_only(&device);
/// let circuit = Circuit::basis_state_preparation(BitString::ones(5));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
///
/// let base = Baseline.execute(&circuit, 8000, &exec, &mut rng);
/// let sim = StaticInvertMeasure::four_mode(5).execute(&circuit, 8000, &exec, &mut rng);
/// let ones = BitString::ones(5);
/// assert!(sim.frequency(&ones) > base.frequency(&ones));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StaticInvertMeasure {
    strings: Vec<InversionString>,
}

impl StaticInvertMeasure {
    /// SIM with an explicit set of inversion strings.
    ///
    /// # Panics
    ///
    /// Panics if `strings` is empty, mixes widths, or contains duplicates.
    pub fn new(strings: Vec<InversionString>) -> Self {
        assert!(
            !strings.is_empty(),
            "SIM needs at least one inversion string"
        );
        let w = strings[0].width();
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(s.width(), w, "inversion strings must share a width");
            assert!(!strings[..i].contains(s), "duplicate inversion string {s}");
        }
        StaticInvertMeasure { strings }
    }

    /// The basic two-mode configuration (§5.2): standard + full inversion.
    pub fn two_mode(n: usize) -> Self {
        StaticInvertMeasure::new(InversionString::sim_two(n))
    }

    /// The paper's evaluated four-mode configuration (§5.3): standard,
    /// full, even-bit, and odd-bit inversion.
    pub fn four_mode(n: usize) -> Self {
        StaticInvertMeasure::new(InversionString::sim_four(n))
    }

    /// Profile-guided string selection — the §5.3 "more inversion strings"
    /// direction taken adaptively. Greedily picks `k` inversion strings
    /// maximizing the machine's *worst-case* average measurement strength
    /// over all possible outputs:
    ///
    /// `argmax_S min_s (1/|S|) Σ_{m∈S} strength(s ⊕ m)`
    ///
    /// Unlike AIM this needs no canary trials or per-application profiling;
    /// it is still a static policy, just tuned once per machine.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0, exceeds `2^width`, or the profile is wider than
    /// 14 qubits (the greedy search scans all `2^n` candidate masks).
    pub fn profile_guided(rbms: &crate::rbms::RbmsTable, k: usize) -> Self {
        let n = rbms.width();
        assert!(n <= 14, "profile-guided search limited to 14 qubits");
        assert!(k >= 1 && k <= (1usize << n), "bad mode count {k}");
        let strengths = rbms.strengths();
        let dim = 1usize << n;
        // avg[s] accumulates Σ strength(s ⊕ m) over chosen masks.
        let mut acc = vec![0.0f64; dim];
        // O(1) membership instead of scanning the chosen list per candidate.
        let mut in_set = vec![false; dim];
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for _ in 0..k {
            let mut best: Option<(f64, usize)> = None;
            for mask in 0..dim {
                if in_set[mask] {
                    continue;
                }
                // Worst-case accumulated strength if `mask` joins the set.
                // The running minimum only decreases, so the scan can stop
                // as soon as it cannot beat the incumbent candidate.
                let floor = best.map_or(f64::NEG_INFINITY, |(bw, _)| bw);
                let mut worst = f64::INFINITY;
                for s in 0..dim {
                    let v = acc[s] + strengths[s ^ mask];
                    if v < worst {
                        worst = v;
                        if worst <= floor {
                            break;
                        }
                    }
                }
                if worst > floor {
                    best = Some((worst, mask));
                }
            }
            let (_, mask) = best.expect("candidate set is never empty");
            for s in 0..dim {
                acc[s] += strengths[s ^ mask];
            }
            in_set[mask] = true;
            chosen.push(mask);
        }
        // The maximin objective is not submodular, so a greedy set can be
        // dominated by hand-picked ones. Refine with single-swap local
        // search from several seeds (the greedy set, the paper's static
        // strings, and a low-index fill) and keep the best optimum.
        //
        // `floor` prunes the min-scan: once the running minimum cannot
        // exceed it the true value no longer matters (any result ≤ floor is
        // rejected identically by the caller).
        let worst_of = |set: &[usize], floor: f64| -> f64 {
            let mut worst = f64::INFINITY;
            for s in 0..dim {
                let v: f64 = set.iter().map(|&m| strengths[s ^ m]).sum();
                if v < worst {
                    worst = v;
                    if worst <= floor {
                        break;
                    }
                }
            }
            worst
        };
        let local_search = |mut set: Vec<usize>| -> (f64, Vec<usize>) {
            let mut member = vec![false; dim];
            for &m in &set {
                member[m] = true;
            }
            let mut current = worst_of(&set, f64::NEG_INFINITY);
            let mut improved = true;
            while improved {
                improved = false;
                for slot in 0..set.len() {
                    for candidate in 0..dim {
                        if member[candidate] {
                            continue;
                        }
                        let old = set[slot];
                        set[slot] = candidate;
                        let w = worst_of(&set, current + 1e-15);
                        if w > current + 1e-15 {
                            current = w;
                            member[old] = false;
                            member[candidate] = true;
                            improved = true;
                        } else {
                            set[slot] = old;
                        }
                    }
                }
            }
            (current, set)
        };
        let mut seeds: Vec<Vec<usize>> = vec![chosen, (0..k).collect()];
        // The paper's static strings (standard/full/even/odd), padded or
        // truncated to k distinct masks.
        let mut paper: Vec<usize> = InversionString::sim_four(n)
            .into_iter()
            .map(|i| i.mask().index())
            .collect();
        paper.dedup();
        paper.truncate(k);
        let mut fill = 0usize;
        while paper.len() < k {
            if !paper.contains(&fill) {
                paper.push(fill);
            }
            fill += 1;
        }
        seeds.push(paper);
        let (_, best_set) = seeds
            .into_iter()
            .map(local_search)
            .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite objective"))
            .expect("at least one seed");
        let chosen = best_set;
        StaticInvertMeasure::new(
            chosen
                .into_iter()
                .map(|m| InversionString::from_mask(qsim::BitString::from_value(m as u64, n)))
                .collect(),
        )
    }

    /// The inversion strings in use.
    pub fn strings(&self) -> &[InversionString] {
        &self.strings
    }

    /// The number of measurement modes.
    pub fn n_modes(&self) -> usize {
        self.strings.len()
    }

    /// Runs one group per inversion string and returns the per-group
    /// *corrected* logs alongside the merged aggregate. Exposed so the
    /// reproduction harness can show per-mode distributions (Figure 7's
    /// panels A–C) in addition to the merge (panel D).
    ///
    /// # Panics
    ///
    /// Panics if the circuit width differs from the strings' width or the
    /// executor width.
    pub fn execute_detailed(
        &self,
        circuit: &Circuit,
        shots: u64,
        executor: &dyn Executor,
        rng: &mut dyn RngCore,
    ) -> (Vec<Counts>, Counts) {
        assert_eq!(
            circuit.n_qubits(),
            self.strings[0].width(),
            "circuit width must match inversion strings"
        );
        let budget = split_shots(shots, self.strings.len());
        // One transformed circuit per inversion mode, dispatched as a
        // single group run so the executor can sweep modes in parallel.
        let transformed: Vec<Circuit> = self.strings.iter().map(|inv| inv.apply(circuit)).collect();
        let raw_logs = executor.run_groups(&transformed, &budget, rng);
        let mut groups = Vec::with_capacity(self.strings.len());
        let mut merged = Counts::new(circuit.n_qubits());
        for (inv, raw) in self.strings.iter().zip(&raw_logs) {
            let corrected = inv.correct(raw);
            merged.merge(&corrected);
            groups.push(corrected);
        }
        (groups, merged)
    }
}

impl MeasurementPolicy for StaticInvertMeasure {
    fn name(&self) -> String {
        format!("sim-{}", self.strings.len())
    }

    fn execute(
        &self,
        circuit: &Circuit,
        shots: u64,
        executor: &dyn Executor,
        rng: &mut dyn RngCore,
    ) -> Counts {
        self.execute_detailed(circuit, shots, executor, rng).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Baseline;
    use qnoise::{DeviceModel, IdealExecutor, NoisyExecutor};
    use qsim::BitString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn names() {
        assert_eq!(StaticInvertMeasure::two_mode(4).name(), "sim-2");
        assert_eq!(StaticInvertMeasure::four_mode(4).name(), "sim-4");
    }

    #[test]
    fn preserves_trial_budget() {
        let exec = IdealExecutor::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        let sim = StaticInvertMeasure::four_mode(3);
        let c = Circuit::new(3);
        for shots in [1u64, 7, 100, 4095] {
            let log = sim.execute(&c, shots, &exec, &mut rng);
            assert_eq!(log.total(), shots);
        }
    }

    #[test]
    fn on_ideal_machine_sim_equals_baseline_output() {
        // Without noise, inversion + correction is a no-op on the logical
        // results.
        let exec = IdealExecutor::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        let c = Circuit::basis_state_preparation(bs("101"));
        let log = StaticInvertMeasure::four_mode(3).execute(&c, 400, &exec, &mut rng);
        assert_eq!(log.get(&bs("101")), 400);
    }

    #[test]
    fn groups_use_distinct_physical_states() {
        // With detailed execution, each group's raw physical measurement
        // happened in a different basis; after correction all agree.
        let exec = IdealExecutor::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let c = Circuit::basis_state_preparation(bs("10"));
        let sim = StaticInvertMeasure::four_mode(2);
        let (groups, merged) = sim.execute_detailed(&c, 80, &exec, &mut rng);
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert_eq!(g.get(&bs("10")), g.total());
        }
        assert_eq!(merged.total(), 80);
    }

    #[test]
    fn sim_improves_weak_state_on_biased_machine() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(5);
        let ones = BitString::ones(5);
        let c = Circuit::basis_state_preparation(ones);
        let shots = 16_000;
        let base = Baseline.execute(&c, shots, &exec, &mut rng);
        let sim2 = StaticInvertMeasure::two_mode(5).execute(&c, shots, &exec, &mut rng);
        let sim4 = StaticInvertMeasure::four_mode(5).execute(&c, shots, &exec, &mut rng);
        let pst_base = base.frequency(&ones);
        let pst_sim2 = sim2.frequency(&ones);
        let pst_sim4 = sim4.frequency(&ones);
        assert!(
            pst_sim2 > pst_base * 1.2,
            "SIM-2 should improve the weakest state: {pst_sim2} vs {pst_base}"
        );
        assert!(
            pst_sim4 > pst_base * 1.1,
            "SIM-4 should improve the weakest state: {pst_sim4} vs {pst_base}"
        );
    }

    #[test]
    fn sim_degrades_strongest_state_slightly() {
        // The cost of SIM: the all-zeros state loses a little fidelity
        // because some groups measure it in weak bases (the paper accepts
        // this trade; see Figure 13's all-zero key).
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(6);
        let zeros = BitString::zeros(5);
        let c = Circuit::basis_state_preparation(zeros);
        let shots = 16_000;
        let base = Baseline.execute(&c, shots, &exec, &mut rng);
        let sim = StaticInvertMeasure::four_mode(5).execute(&c, shots, &exec, &mut rng);
        assert!(sim.frequency(&zeros) < base.frequency(&zeros));
    }

    #[test]
    fn sim_flattens_state_dependence() {
        // The spread between strongest and weakest PST shrinks under SIM.
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(7);
        let shots = 8_000;
        let spread = |policy: &dyn MeasurementPolicy, rng: &mut StdRng| {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for target in [BitString::zeros(5), BitString::ones(5)] {
                let c = Circuit::basis_state_preparation(target);
                let log = policy.execute(&c, shots, &exec, rng);
                let p = log.frequency(&target);
                min = min.min(p);
                max = max.max(p);
            }
            max - min
        };
        let base_spread = spread(&Baseline, &mut rng);
        let sim_spread = spread(&StaticInvertMeasure::four_mode(5), &mut rng);
        assert!(
            sim_spread < base_spread * 0.5,
            "SIM should flatten the spread: {sim_spread} vs {base_spread}"
        );
    }

    #[test]
    fn profile_guided_beats_static_worst_case() {
        // On the arbitrary-bias machine, the profile-guided string set's
        // worst-case average strength must be at least the paper's static
        // four-string set's.
        let rbms = crate::rbms::RbmsTable::exact(&DeviceModel::ibmqx4().readout());
        let worst_case = |sim: &StaticInvertMeasure| {
            BitString::all(5)
                .map(|s| {
                    sim.strings()
                        .iter()
                        .map(|inv| rbms.strength(inv.measured_state(s)))
                        .sum::<f64>()
                        / sim.n_modes() as f64
                })
                .fold(f64::INFINITY, f64::min)
        };
        let static4 = StaticInvertMeasure::four_mode(5);
        let guided4 = StaticInvertMeasure::profile_guided(&rbms, 4);
        assert!(
            worst_case(&guided4) >= worst_case(&static4),
            "guided {} vs static {}",
            worst_case(&guided4),
            worst_case(&static4)
        );
    }

    #[test]
    fn profile_guided_first_string_targets_strongest() {
        // With k = 1 the best single mode on a machine whose strongest
        // state is s* is... the standard mode only if the profile is flat;
        // on ibmqx2 the greedy must pick a mask that lifts the weak
        // states' worst case above the standard mode's.
        let rbms = crate::rbms::RbmsTable::exact(&DeviceModel::ibmqx2().readout());
        let guided = StaticInvertMeasure::profile_guided(&rbms, 1);
        let standard_worst = BitString::all(5)
            .map(|s| rbms.strength(s))
            .fold(f64::INFINITY, f64::min);
        let guided_worst = BitString::all(5)
            .map(|s| rbms.strength(guided.strings()[0].measured_state(s)))
            .fold(f64::INFINITY, f64::min);
        assert!(guided_worst >= standard_worst);
    }

    #[test]
    fn profile_guided_respects_k() {
        let rbms = crate::rbms::RbmsTable::exact(&DeviceModel::ibmqx4().readout());
        for k in [1usize, 2, 4, 8] {
            assert_eq!(StaticInvertMeasure::profile_guided(&rbms, k).n_modes(), k);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate inversion string")]
    fn duplicate_strings_rejected() {
        StaticInvertMeasure::new(vec![InversionString::full(3), InversionString::full(3)]);
    }
}
