//! Hand-rolled CRC32 (IEEE 802.3 polynomial), std-only.
//!
//! Both the `rbms v2` profile footer and each `charjournal v2` checkpoint
//! line carry a CRC32 so that bit rot, torn appends, and truncation are
//! *detected* rather than silently parsed into a wrong table. The
//! reflected-polynomial table-driven variant here matches zlib's `crc32`
//! (and `cksum -o 3`), so profiles can be checked with standard tools.

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `bytes` (IEEE, reflected, init and final XOR `0xFFFF_FFFF`).
///
/// # Examples
///
/// ```
/// // The standard CRC32 check value.
/// assert_eq!(invmeas::checksum::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value plus a few fixed points.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
        assert_eq!(crc32(b"rbms v2"), crc32(b"rbms v2"));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = b"width 5\ntrials 512\n00000 9.03e-1\n".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }
}
