//! Journaled, resumable characterization (`charjournal v2`).
//!
//! Characterization is the most expensive artifact in the pipeline
//! (§6.2.1: brute force is `O(2^N)` trials), yet a crash or injected
//! fault mid-run used to throw the whole sweep away. This module
//! decomposes each technique into deterministic **units** — a brute-force
//! state batch, an ESCT shot chunk, an AWCT window — and checkpoints a
//! line to a journal file after each completed unit:
//!
//! ```text
//! charjournal v2
//! device ibmqx4
//! method brute
//! width 5
//! window 0
//! overlap 0
//! shots 8192
//! seed 2019
//! unit 0 9c2f41aa 0:8101 1:8052 …
//! unit 1 17d00e3b 8:7990 9:7911 …
//! ```
//!
//! Each unit draws from its **own** RNG stream, seeded by a splitmix64
//! mix of the job seed and the unit index — never from a shared
//! sequential stream. That is what makes a resumed run *bit-identical* to
//! an uninterrupted one: completed units are replayed from the journal,
//! missing units re-run with exactly the seed they would have had, and
//! the combine step is a pure function of the unit results. Each `unit`
//! line carries its own CRC32 (see [`crate::checksum`]), so a torn append
//! (the process died mid-checkpoint) is detected and the partial line
//! discarded — that unit simply re-runs.
//!
//! The [`FaultSite::JournalWrite`] hook fires once per checkpoint append,
//! letting chaos tests kill (`Panic`), tear (`Torn`), or fail (`Error`)
//! the journal mid-run and then assert byte-identical recovery.
//!
//! The version tag covers **numerics**, not just line layout. Unit counts
//! are sampled from simulated probabilities, so any change to simulator
//! rounding changes them: `v2` marks the blocked (4096-amplitude) norm
//! and probability reductions introduced with the persistent worker pool,
//! which altered bitwise results versus `v1` binaries for registers
//! larger than one block. A `v1` journal therefore fails the header check
//! and is discarded — the run starts fresh, which is always safe — rather
//! than splicing old-numerics replayed units into a new-numerics run and
//! producing a profile reproducible under *neither* binary.

use crate::checksum::crc32;
use crate::rbms::{awct_combine, awct_starts, awct_window_circuit, RbmsTable};
use invmeas_faults::{Fault, FaultInjector, FaultSite};
use qnoise::Executor;
use qsim::{BitString, Circuit, Counts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

/// Journal version line. The unit-line layout is unchanged since `v1`;
/// the bump to `v2` marks a simulator numerics change (blocked
/// reductions) that makes cross-version unit counts non-reproducible —
/// see the module docs. Bump it again whenever sampled counts can change.
const JOURNAL_VERSION_LINE: &str = "charjournal v2";

/// Basis states per brute-force unit (journal checkpoint granularity).
const BRUTE_BATCH_STATES: usize = 8;
/// Maximum shot chunks an ESCT run is split into.
const ESCT_CHUNKS: u64 = 8;

/// The characterization technique being journaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CharMethod {
    /// Prepare-and-measure every basis state.
    Brute,
    /// Equal-superposition frequencies, sqrt-corrected.
    Esct,
    /// Sliding-window superpositions, multiplicatively combined.
    Awct,
}

impl CharMethod {
    /// The journal spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CharMethod::Brute => "brute",
            CharMethod::Esct => "esct",
            CharMethod::Awct => "awct",
        }
    }

    /// Parses the journal spelling.
    pub fn parse(s: &str) -> Option<CharMethod> {
        match s {
            "brute" => Some(CharMethod::Brute),
            "esct" => Some(CharMethod::Esct),
            "awct" => Some(CharMethod::Awct),
            _ => None,
        }
    }
}

/// The full identity of one characterization job. Two runs with equal
/// specs produce bit-identical tables; a journal whose header disagrees
/// with the requesting spec is *not* resumed (the stale journal is
/// discarded and the run starts fresh).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharSpec {
    /// Device label (identity only — the executor does the measuring).
    pub device: String,
    /// Technique.
    pub method: CharMethod,
    /// Register width.
    pub width: usize,
    /// AWCT window size (0 for other methods).
    pub window: usize,
    /// AWCT window overlap (0 for other methods).
    pub overlap: usize,
    /// Trial budget: per state (brute), total (ESCT), per window (AWCT).
    pub shots: u64,
    /// Job seed; each unit derives its own stream from it.
    pub seed: u64,
}

impl CharSpec {
    /// A brute-force job spec.
    pub fn brute(device: impl Into<String>, width: usize, shots: u64, seed: u64) -> Self {
        CharSpec {
            device: device.into(),
            method: CharMethod::Brute,
            width,
            window: 0,
            overlap: 0,
            shots,
            seed,
        }
    }

    /// An ESCT job spec.
    pub fn esct(device: impl Into<String>, width: usize, shots: u64, seed: u64) -> Self {
        CharSpec {
            device: device.into(),
            method: CharMethod::Esct,
            width,
            window: 0,
            overlap: 0,
            shots,
            seed,
        }
    }

    /// An AWCT job spec.
    pub fn awct(
        device: impl Into<String>,
        width: usize,
        window: usize,
        overlap: usize,
        shots: u64,
        seed: u64,
    ) -> Self {
        CharSpec {
            device: device.into(),
            method: CharMethod::Awct,
            width,
            window,
            overlap,
            shots,
            seed,
        }
    }

    /// How many units (journal checkpoints) this job decomposes into — a
    /// pure function of the spec.
    ///
    /// # Panics
    ///
    /// Panics on an invalid spec (zero shots, bad width or window).
    pub fn unit_count(&self) -> usize {
        self.assert_valid();
        match self.method {
            CharMethod::Brute => (1usize << self.width).div_ceil(BRUTE_BATCH_STATES),
            CharMethod::Esct => self.shots.min(ESCT_CHUNKS) as usize,
            CharMethod::Awct => awct_starts(self.width, self.window, self.overlap).len(),
        }
    }

    fn assert_valid(&self) {
        assert!(self.shots > 0, "characterization needs a trial budget");
        match self.method {
            CharMethod::Brute => {
                assert!(
                    self.width >= 1 && self.width <= 16,
                    "brute force limited to 16 qubits"
                )
            }
            CharMethod::Esct => {
                assert!(
                    self.width >= 1 && self.width <= 16,
                    "ESCT table limited to 16 qubits"
                )
            }
            CharMethod::Awct => {
                assert!(self.width <= 20, "AWCT combined table limited to 20 qubits");
                assert!(
                    self.window >= 1 && self.window <= self.width,
                    "bad window size {}",
                    self.window
                );
                assert!(
                    self.overlap < self.window,
                    "overlap must be smaller than the window"
                );
            }
        }
    }

    /// The journal header for this spec.
    fn header(&self) -> String {
        format!(
            "{JOURNAL_VERSION_LINE}\ndevice {}\nmethod {}\nwidth {}\nwindow {}\noverlap {}\nshots {}\nseed {}\n",
            sanitize_token(&self.device),
            self.method.as_str(),
            self.width,
            self.window,
            self.overlap,
            self.shots,
            self.seed,
        )
    }
}

/// Tokens in the line-oriented format must not contain whitespace.
fn sanitize_token(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

/// What one [`characterize_journaled`] run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Units the job decomposes into.
    pub total_units: u64,
    /// Checkpoints appended to the journal by this run.
    pub checkpoints_written: u64,
    /// Units replayed from an in-flight journal instead of re-measured.
    pub resumed_units: u64,
}

impl JournalStats {
    /// Whether this run picked up an in-flight journal.
    pub fn resumed(&self) -> bool {
        self.resumed_units > 0
    }
}

/// Why a journaled characterization failed.
#[derive(Debug)]
pub enum JournalError {
    /// Journal file I/O failed (including injected journal-write faults).
    Io(std::io::Error),
    /// The combined results violate a table invariant.
    Invalid(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Invalid(m) => write!(f, "journaled characterization invalid: {m}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Invalid(_) => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// One unit's result: sparse `(state index, count)` pairs, sorted by
/// state. Counts are integers, so replay is exact — no float round-trip.
type UnitResult = Vec<(u64, u64)>;

/// Derives the RNG seed for one unit from the job seed — splitmix64, so
/// nearby unit indices get statistically independent streams and a
/// resumed unit re-runs with exactly the stream it would have had.
fn unit_seed(job_seed: u64, unit: u64) -> u64 {
    let mut z = job_seed.wrapping_add((unit + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The canonical payload text of one unit line (what the line CRC covers).
fn unit_payload(idx: usize, pairs: &[(u64, u64)]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{idx}");
    for (state, count) in pairs {
        let _ = write!(out, " {state}:{count}");
    }
    out
}

fn unit_line(idx: usize, pairs: &[(u64, u64)]) -> String {
    let payload = unit_payload(idx, pairs);
    format!("unit {:08x} {payload}\n", crc32(payload.as_bytes()))
}

/// Parses one `unit` line; `None` for anything malformed or checksum-bad
/// (the loader stops at the first such line — it is the torn tail).
fn parse_unit_line(line: &str) -> Option<(usize, UnitResult)> {
    let rest = line.strip_prefix("unit ")?;
    let (crc_text, payload) = rest.split_once(' ')?;
    let stored = u32::from_str_radix(crc_text, 16).ok()?;
    if crc32(payload.as_bytes()) != stored {
        return None;
    }
    let mut fields = payload.split(' ');
    let idx: usize = fields.next()?.parse().ok()?;
    let mut pairs = Vec::new();
    for field in fields {
        let (state, count) = field.split_once(':')?;
        pairs.push((state.parse().ok()?, count.parse().ok()?));
    }
    Some((idx, pairs))
}

/// Inspects exported journal text: returns the header spec and the
/// number of intact unit lines, or `None` when the header is unusable
/// (wrong version, damaged, or not a journal at all). This is the
/// receive-side validation for journal handoff between nodes — a
/// follower should refuse to install text that does not inspect.
pub fn inspect_journal(text: &str) -> Option<(CharSpec, u64)> {
    load_journal(text).map(|(spec, units)| (spec, units.len() as u64))
}

/// Reads a journal file's raw text for handoff to another node, or
/// `None` when no journal exists at `path`.
///
/// # Errors
///
/// Propagates I/O failures other than the file being absent.
pub fn export_journal(path: &Path) -> std::io::Result<Option<String>> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Installs journal text received from another node, byte-for-byte, via
/// a temp sibling and atomic rename (a crash mid-install leaves the old
/// journal intact). The text must [`inspect_journal`] cleanly — garbage
/// is refused rather than written, because a resumed run trusts every
/// intact line it finds. Returns the number of intact units installed.
///
/// # Errors
///
/// `InvalidData` when the text fails inspection; otherwise I/O failures.
pub fn install_journal(path: &Path, text: &str) -> std::io::Result<u64> {
    let Some((_, units)) = inspect_journal(text) else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "journal text failed inspection",
        ));
    };
    let tmp = {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".tmp");
        path.with_file_name(name)
    };
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)?;
    Ok(units)
}

/// Parses a journal file: the header spec plus every intact unit line.
/// Stops (without erroring) at the first torn or garbled unit line.
/// Returns `None` when the header itself is unusable — the journal
/// belongs to some other run or is damaged beyond trust, so the caller
/// starts fresh.
fn load_journal(text: &str) -> Option<(CharSpec, Vec<(usize, UnitResult)>)> {
    let mut lines = text.lines();
    if lines.next()?.trim() != JOURNAL_VERSION_LINE {
        return None;
    }
    let mut field = |prefix: &str| -> Option<String> {
        Some(lines.next()?.trim().strip_prefix(prefix)?.to_string())
    };
    let device = field("device ")?;
    let method = CharMethod::parse(&field("method ")?)?;
    let width: usize = field("width ")?.parse().ok()?;
    let window: usize = field("window ")?.parse().ok()?;
    let overlap: usize = field("overlap ")?.parse().ok()?;
    let shots: u64 = field("shots ")?.parse().ok()?;
    let seed: u64 = field("seed ")?.parse().ok()?;
    let spec = CharSpec {
        device,
        method,
        width,
        window,
        overlap,
        shots,
        seed,
    };
    let mut units = Vec::new();
    for line in lines {
        match parse_unit_line(line.trim_end()) {
            Some(unit) => units.push(unit),
            None => break, // torn tail: that unit (and anything after) re-runs
        }
    }
    Some((spec, units))
}

/// Appends one checkpoint line, consulting [`FaultSite::JournalWrite`].
fn append_checkpoint(
    file: &mut File,
    idx: usize,
    pairs: &[(u64, u64)],
    faults: &dyn FaultInjector,
) -> std::io::Result<()> {
    let line = unit_line(idx, pairs);
    if let Some(f) = faults.check(FaultSite::JournalWrite) {
        f.apply_latency();
        match f {
            Fault::Error(m) => return Err(std::io::Error::other(m)),
            Fault::Panic(m) => panic!("{m}"),
            Fault::Torn => {
                // A torn append: half the line lands without a newline,
                // then the device gives up. The loader's per-line CRC must
                // reject it on resume.
                file.write_all(&line.as_bytes()[..line.len() / 2])?;
                file.sync_data().ok();
                return Err(std::io::Error::other("injected torn journal append"));
            }
            Fault::Latency(_) | Fault::Corrupt => {}
        }
    }
    file.write_all(line.as_bytes())?;
    file.flush()
}

/// Runs one unit with its derived RNG stream and returns its result.
fn run_unit(executor: &dyn Executor, spec: &CharSpec, idx: usize) -> UnitResult {
    let n = spec.width;
    let mut rng = StdRng::seed_from_u64(unit_seed(spec.seed, idx as u64));
    match spec.method {
        CharMethod::Brute => {
            let lo = idx * BRUTE_BATCH_STATES;
            let hi = ((idx + 1) * BRUTE_BATCH_STATES).min(1 << n);
            let states: Vec<BitString> = (lo..hi)
                .map(|v| BitString::from_value(v as u64, n))
                .collect();
            let circuits: Vec<Circuit> = states
                .iter()
                .map(|&s| Circuit::basis_state_preparation(s))
                .collect();
            let logs = executor.run_batch(&circuits, spec.shots, &mut rng);
            states
                .iter()
                .zip(&logs)
                .map(|(s, log)| (s.index() as u64, log.get(s)))
                .collect()
        }
        CharMethod::Esct => {
            let chunks = spec.shots.min(ESCT_CHUNKS);
            let (base, rem) = (spec.shots / chunks, spec.shots % chunks);
            let chunk_shots = base + u64::from((idx as u64) < rem);
            let log = executor.run(&Circuit::uniform_superposition(n), chunk_shots, &mut rng);
            sparse_counts(&log)
        }
        CharMethod::Awct => {
            let starts = awct_starts(n, spec.window, spec.overlap);
            let lo = starts[idx];
            let log = executor.run(
                &awct_window_circuit(n, lo, spec.window),
                spec.shots,
                &mut rng,
            );
            // Marginalize onto the window bits before journaling: the
            // combine step only needs the window marginal, and the
            // checkpoint stays `2^window` pairs instead of `2^n`.
            let mut marg = Counts::new(spec.window);
            for (s, &cnt) in log.iter() {
                marg.record_n(s.window(lo, spec.window), cnt);
            }
            sparse_counts(&marg)
        }
    }
}

/// Sorted nonzero `(state index, count)` pairs of a log.
fn sparse_counts(log: &Counts) -> UnitResult {
    let mut pairs: Vec<(u64, u64)> = log
        .iter()
        .filter(|(_, &cnt)| cnt > 0)
        .map(|(s, &cnt)| (s.index() as u64, cnt))
        .collect();
    pairs.sort_unstable();
    pairs
}

/// Combines completed unit results into the final table — a pure
/// function, so resumed and uninterrupted runs agree bit-for-bit.
fn combine(spec: &CharSpec, units: &[UnitResult]) -> Result<RbmsTable, JournalError> {
    let n = spec.width;
    let dim = 1usize << n;
    let (strengths, trials) = match spec.method {
        CharMethod::Brute => {
            let mut counts = vec![0u64; dim];
            for unit in units {
                for &(state, count) in unit {
                    counts[state as usize] = count;
                }
            }
            let shots = spec.shots as f64;
            let strengths: Vec<f64> = counts.iter().map(|&c| c as f64 / shots).collect();
            (strengths, spec.shots << n)
        }
        CharMethod::Esct => {
            let mut counts = vec![0u64; dim];
            for unit in units {
                for &(state, count) in unit {
                    counts[state as usize] += count;
                }
            }
            let total = spec.shots as f64;
            let strengths: Vec<f64> = counts.iter().map(|&c| (c as f64 / total).sqrt()).collect();
            (strengths, spec.shots)
        }
        CharMethod::Awct => {
            let starts = awct_starts(n, spec.window, spec.overlap);
            let shots = spec.shots as f64;
            let window_tables: Vec<Vec<f64>> = units
                .iter()
                .map(|unit| {
                    let mut freqs = vec![0.0f64; 1 << spec.window];
                    for &(pat, count) in unit {
                        freqs[pat as usize] = (count as f64 / shots).sqrt();
                    }
                    freqs
                })
                .collect();
            let strengths = awct_combine(n, spec.window, spec.overlap, &starts, &window_tables);
            (strengths, spec.shots * starts.len() as u64)
        }
    };
    let mut table = RbmsTable::try_from_strengths(n, strengths)
        .map_err(|e| JournalError::Invalid(e.to_string()))?;
    table.set_trials_used(trials);
    Ok(table)
}

/// Runs (or resumes) a characterization job, checkpointing each completed
/// unit to `journal` when a path is given.
///
/// * An existing journal whose header matches `spec` seeds the run: its
///   intact units are replayed, only the missing ones re-measure, and the
///   result is bit-identical to an uninterrupted run — for any executor
///   worker count, since units execute in a fixed order with per-unit
///   seeds and [`Executor::run_batch`] is itself thread-invariant.
/// * A journal with a mismatched or damaged header is ignored and
///   overwritten — resuming someone else's checkpoints would poison the
///   table.
/// * On resume the file is first compacted (header + intact unit lines
///   rewritten through a temp sibling), so a torn tail from the previous
///   crash never corrupts subsequent appends.
///
/// The journal file is *left in place* on success; callers delete it once
/// the resulting profile is safely persisted (crash between "table
/// combined" and "profile written" must stay resumable).
///
/// # Errors
///
/// [`JournalError::Io`] on journal write failures (including injected
/// [`FaultSite::JournalWrite`] faults); [`JournalError::Invalid`] when
/// the combined results violate a table invariant.
///
/// # Panics
///
/// Panics on an invalid spec, an executor/spec width mismatch, or an
/// injected `Panic` fault (the chaos "kill mid-checkpoint" scenario).
pub fn characterize_journaled(
    executor: &dyn Executor,
    spec: &CharSpec,
    journal: Option<&Path>,
    faults: &dyn FaultInjector,
) -> Result<(RbmsTable, JournalStats), JournalError> {
    characterize_journaled_with_hook(executor, spec, journal, faults, None)
}

/// [`characterize_journaled`] with a per-checkpoint hook.
///
/// The hook fires after each checkpoint line is durably appended, with
/// the number of checkpoints this run has written so far. A cluster
/// owner uses it to ship the in-flight journal to follower nodes as the
/// run progresses, so a kill at any point leaves every *completed* unit
/// already replicated — the handoff invariant behind cluster-wide
/// single-flight characterization. Hook failures must be handled by the
/// hook itself (replication is best-effort); it cannot fail the run.
///
/// # Errors
///
/// As [`characterize_journaled`].
///
/// # Panics
///
/// As [`characterize_journaled`].
pub fn characterize_journaled_with_hook(
    executor: &dyn Executor,
    spec: &CharSpec,
    journal: Option<&Path>,
    faults: &dyn FaultInjector,
    checkpoint_hook: Option<&(dyn Fn(u64) + Sync)>,
) -> Result<(RbmsTable, JournalStats), JournalError> {
    spec.assert_valid();
    assert_eq!(
        executor.n_qubits(),
        spec.width,
        "executor width must match the characterization spec"
    );
    let total = spec.unit_count();
    let mut completed: Vec<Option<UnitResult>> = vec![None; total];
    let mut stats = JournalStats {
        total_units: total as u64,
        ..JournalStats::default()
    };

    // Resume: replay intact units from a matching in-flight journal.
    if let Some(path) = journal {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Some((found_spec, units)) = load_journal(&text) {
                if found_spec == *spec {
                    for (idx, pairs) in units {
                        if idx < total && completed[idx].is_none() {
                            completed[idx] = Some(pairs);
                            stats.resumed_units += 1;
                        }
                    }
                }
            }
        }
    }

    // (Re)write the journal compacted — header plus replayed units — via
    // a temp sibling so a crash here leaves the old journal intact.
    let mut writer: Option<File> = match journal {
        Some(path) => {
            let mut text = spec.header();
            for (idx, unit) in completed.iter().enumerate() {
                if let Some(pairs) = unit {
                    text.push_str(&unit_line(idx, pairs));
                }
            }
            let tmp = {
                let mut name = path.file_name().unwrap_or_default().to_os_string();
                name.push(".tmp");
                path.with_file_name(name)
            };
            std::fs::write(&tmp, &text)?;
            std::fs::rename(&tmp, path)?;
            Some(OpenOptions::new().append(true).open(path)?)
        }
        None => None,
    };

    for (idx, slot) in completed.iter_mut().enumerate() {
        if slot.is_some() {
            continue;
        }
        let pairs = run_unit(executor, spec, idx);
        if let Some(file) = writer.as_mut() {
            append_checkpoint(file, idx, &pairs, faults)?;
            stats.checkpoints_written += 1;
            if let Some(hook) = checkpoint_hook {
                hook(stats.checkpoints_written);
            }
        }
        *slot = Some(pairs);
    }

    let units: Vec<UnitResult> = completed
        .into_iter()
        .map(|u| u.expect("all units ran"))
        .collect();
    let table = combine(spec, &units)?;
    Ok((table, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use invmeas_faults::{FaultPlan, NoFaults};
    use qnoise::{DeviceModel, NoisyExecutor};
    use std::sync::Arc;

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("invmeas-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.journal"))
    }

    fn specs() -> Vec<CharSpec> {
        vec![
            CharSpec::brute("ibmqx4", 5, 256, 2019),
            CharSpec::esct("ibmqx4", 5, 4096, 2019),
            CharSpec::awct("ibmqx4", 5, 3, 2, 1024, 2019),
        ]
    }

    #[test]
    fn unit_seed_streams_differ() {
        let seeds: std::collections::HashSet<u64> = (0..100).map(|u| unit_seed(7, u)).collect();
        assert_eq!(seeds.len(), 100);
        assert_eq!(unit_seed(7, 3), unit_seed(7, 3));
        assert_ne!(unit_seed(7, 3), unit_seed(8, 3));
    }

    #[test]
    fn journaled_run_is_deterministic_and_thread_invariant() {
        let dev = DeviceModel::ibmqx4();
        for spec in specs() {
            let run = |threads: usize| {
                let exec = NoisyExecutor::readout_only(&dev).with_threads(threads);
                let (table, stats) = characterize_journaled(&exec, &spec, None, &NoFaults).unwrap();
                assert_eq!(stats.total_units, spec.unit_count() as u64);
                assert_eq!(stats.checkpoints_written, 0, "no journal, no checkpoints");
                table
            };
            assert_eq!(run(1), run(4), "{:?}", spec.method);
        }
    }

    #[test]
    fn journal_replay_is_bit_identical_after_kill_at_every_checkpoint() {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::readout_only(&dev);
        for spec in specs() {
            let baseline = {
                let path = temp_journal(&format!("baseline-{}", spec.method.as_str()));
                let _ = std::fs::remove_file(&path);
                let (table, stats) =
                    characterize_journaled(&exec, &spec, Some(&path), &NoFaults).unwrap();
                assert_eq!(stats.checkpoints_written, stats.total_units);
                std::fs::remove_file(&path).unwrap();
                table
            };
            // Kill (panic) at every possible checkpoint ordinal, then
            // resume; the result must match the uninterrupted run
            // byte-for-byte in its serialized form.
            for kill_at in 1..=spec.unit_count() as u64 {
                let path = temp_journal(&format!("kill-{}-{kill_at}", spec.method.as_str()));
                let _ = std::fs::remove_file(&path);
                let plan = Arc::new(FaultPlan::new(1).on_nth(
                    FaultSite::JournalWrite,
                    kill_at,
                    Fault::Panic("killed mid-checkpoint".into()),
                ));
                let exec2 = NoisyExecutor::readout_only(&dev);
                let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    characterize_journaled(&exec2, &spec, Some(&path), plan.as_ref())
                }));
                assert!(died.is_err(), "scripted kill at {kill_at} did not fire");
                let (resumed, stats) =
                    characterize_journaled(&exec, &spec, Some(&path), &NoFaults).unwrap();
                assert_eq!(
                    stats.resumed_units,
                    kill_at - 1,
                    "{}: units before the kill replay from the journal",
                    spec.method.as_str()
                );
                assert_eq!(
                    resumed.to_text(),
                    baseline.to_text(),
                    "{} killed at checkpoint {kill_at}",
                    spec.method.as_str()
                );
                std::fs::remove_file(&path).unwrap();
            }
        }
    }

    #[test]
    fn torn_append_is_discarded_on_resume() {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::readout_only(&dev);
        let spec = CharSpec::brute("ibmqx4", 5, 128, 11);
        let path = temp_journal("torn");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(2).on_nth(FaultSite::JournalWrite, 2, Fault::Torn);
        let err = characterize_journaled(&exec, &spec, Some(&path), &plan).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        // The file ends in a torn half-line; resume must drop exactly it.
        let (resumed, stats) =
            characterize_journaled(&exec, &spec, Some(&path), &NoFaults).unwrap();
        assert_eq!(stats.resumed_units, 1);
        let (clean, _) = characterize_journaled(&exec, &spec, None, &NoFaults).unwrap();
        assert_eq!(resumed.to_text(), clean.to_text());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_journal_is_not_resumed() {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::readout_only(&dev);
        let path = temp_journal("mismatch");
        let _ = std::fs::remove_file(&path);
        let old = CharSpec::brute("ibmqx4", 5, 128, 1);
        characterize_journaled(&exec, &old, Some(&path), &NoFaults).unwrap();
        // Different seed: the stale journal must be ignored, not replayed.
        let new = CharSpec::brute("ibmqx4", 5, 128, 2);
        let (resumed, stats) = characterize_journaled(&exec, &new, Some(&path), &NoFaults).unwrap();
        assert_eq!(stats.resumed_units, 0);
        assert_eq!(stats.checkpoints_written, stats.total_units);
        let (clean, _) = characterize_journaled(&exec, &new, None, &NoFaults).unwrap();
        assert_eq!(resumed.to_text(), clean.to_text());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journaled_brute_matches_exact_shape() {
        // The chunked estimator is still an unbiased RBMS estimate.
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let spec = CharSpec::brute("ibmqx2", 5, 4000, 42);
        let (est, _) = characterize_journaled(&exec, &spec, None, &NoFaults).unwrap();
        assert_eq!(est.trials_used(), 4000 * 32);
        let exact = RbmsTable::exact(&dev.readout());
        assert!(est.mse_vs(&exact) < 0.002);
    }

    #[test]
    fn journaled_esct_and_awct_match_exact_shape() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let exact = RbmsTable::exact(&dev.readout());
        let (esct, _) = characterize_journaled(
            &exec,
            &CharSpec::esct("ibmqx2", 5, 400_000, 9),
            None,
            &NoFaults,
        )
        .unwrap();
        assert!(
            esct.mse_vs(&exact) < 0.05,
            "ESCT MSE {}",
            esct.mse_vs(&exact)
        );
        let (awct, _) = characterize_journaled(
            &exec,
            &CharSpec::awct("ibmqx2", 5, 3, 2, 150_000, 9),
            None,
            &NoFaults,
        )
        .unwrap();
        assert!(
            awct.mse_vs(&exact) < 0.05,
            "AWCT MSE {}",
            awct.mse_vs(&exact)
        );
        assert_eq!(awct.trials_used(), 150_000 * 3);
    }

    #[test]
    fn checkpoint_hook_fires_per_append_and_exported_prefix_resumes() {
        // Simulate journaled handoff: every checkpoint hook exports the
        // in-flight journal (as a cluster owner replicating to a
        // follower would), the run is killed partway, and the last
        // exported snapshot resumes bit-identically elsewhere.
        let dev = DeviceModel::ibmqx4();
        let spec = CharSpec::brute("ibmqx4", 5, 128, 21);
        let src = temp_journal("hook-src");
        let dst = temp_journal("hook-dst");
        let _ = std::fs::remove_file(&src);
        let _ = std::fs::remove_file(&dst);

        let baseline = {
            let exec = NoisyExecutor::readout_only(&dev);
            let (t, _) = characterize_journaled(&exec, &spec, None, &NoFaults).unwrap();
            t
        };

        let kill_at = 3u64;
        let shipped = std::sync::Mutex::new((0u64, String::new()));
        let hook = |written: u64| {
            let text = export_journal(&src).unwrap().expect("journal exists");
            *shipped.lock().unwrap() = (written, text);
        };
        let plan = FaultPlan::new(5).on_nth(
            FaultSite::JournalWrite,
            kill_at,
            Fault::Panic("killed mid-checkpoint".into()),
        );
        let exec = NoisyExecutor::readout_only(&dev);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            characterize_journaled_with_hook(&exec, &spec, Some(&src), &plan, Some(&hook))
        }));
        assert!(died.is_err(), "scripted kill did not fire");

        let (hook_calls, text) = shipped.into_inner().unwrap();
        assert_eq!(hook_calls, kill_at - 1, "one hook call per durable append");
        let (found_spec, units) = inspect_journal(&text).expect("shipped text inspects");
        assert_eq!(found_spec, spec);
        assert_eq!(units, kill_at - 1);

        // Install on the "follower" and resume there.
        assert_eq!(install_journal(&dst, &text).unwrap(), kill_at - 1);
        let (resumed, stats) = characterize_journaled(&exec, &spec, Some(&dst), &NoFaults).unwrap();
        assert_eq!(stats.resumed_units, kill_at - 1);
        assert_eq!(
            stats.checkpoints_written + stats.resumed_units,
            stats.total_units,
            "handoff must cost exactly one full run in total"
        );
        assert_eq!(resumed.to_text(), baseline.to_text());
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&dst).ok();
    }

    #[test]
    fn install_journal_refuses_garbage() {
        let path = temp_journal("install-garbage");
        let _ = std::fs::remove_file(&path);
        let err = install_journal(&path, "not a journal at all").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(!path.exists(), "refused text must not land on disk");
        assert!(
            inspect_journal("charjournal v1\ndevice x").is_none(),
            "old version refused"
        );
        assert_eq!(
            export_journal(&path).unwrap(),
            None,
            "absent journal exports None"
        );
    }

    #[test]
    fn unit_line_roundtrip_and_crc_rejection() {
        let pairs = vec![(0u64, 120u64), (3, 8), (31, 1)];
        let line = unit_line(7, &pairs);
        let (idx, back) = parse_unit_line(line.trim_end()).unwrap();
        assert_eq!(idx, 7);
        assert_eq!(back, pairs);
        // A flipped digit fails the line CRC.
        let bad = line.replace("120", "121");
        assert!(parse_unit_line(bad.trim_end()).is_none());
        // A truncated (torn) line fails too.
        assert!(parse_unit_line(&line[..line.len() / 2]).is_none());
    }
}
