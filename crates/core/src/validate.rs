//! Invariant guards for the characterization → profile → mitigation
//! pipeline.
//!
//! Every strength table and every rescaled distribution that flows through
//! the system obeys a handful of invariants: strengths are finite and
//! non-negative with at least one positive entry; probability
//! distributions are normalized with every mass in `[0, 1]`; AIM's
//! rescaled canary likelihoods are finite and non-negative. This module
//! centralizes the checks so [`RbmsTable`](crate::RbmsTable) construction,
//! `profile_io` loads, AIM's canary rescaling, and the service cache's
//! admission path all enforce the same contract — and so violations that
//! are *recoverable* (clamp and renormalize) are counted in one
//! process-wide ledger that `svc status` surfaces as `invariant_clamps`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of clamped invariant violations (a gauge mirrored
/// into `ServiceCounters`, like the fault-injection total).
static INVARIANT_CLAMPS: AtomicU64 = AtomicU64::new(0);

/// Total invariant violations clamped so far in this process.
pub fn invariant_clamps() -> u64 {
    INVARIANT_CLAMPS.load(Ordering::Relaxed)
}

/// Records `n` clamped violations in the process-wide ledger.
pub fn record_clamps(n: u64) {
    if n > 0 {
        INVARIANT_CLAMPS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Why a table or distribution failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// The value vector length does not match `2^width`.
    WrongLength {
        /// Declared register width.
        width: usize,
        /// Observed vector length.
        len: usize,
    },
    /// An entry is NaN or infinite.
    NonFinite {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An entry is negative.
    Negative {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Every strength is zero — the table cannot rank states.
    AllZero,
    /// A distribution's masses do not sum to 1 within tolerance.
    NotNormalized {
        /// The observed sum.
        sum: f64,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::WrongLength { width, len } => {
                write!(f, "length {len} does not match 2^{width} entries")
            }
            ValidateError::NonFinite { index, value } => {
                write!(f, "invalid strength {value} at state index {index}")
            }
            ValidateError::Negative { index, value } => {
                write!(
                    f,
                    "invalid strength {value} at state index {index} (negative)"
                )
            }
            ValidateError::AllZero => write!(f, "all strengths are zero"),
            ValidateError::NotNormalized { sum } => {
                write!(f, "distribution masses sum to {sum}, not 1")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Checks a strength vector: length `2^width`, every entry finite and
/// non-negative, at least one entry positive.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn validate_strengths(width: usize, strengths: &[f64]) -> Result<(), ValidateError> {
    if strengths.len() != 1usize << width {
        return Err(ValidateError::WrongLength {
            width,
            len: strengths.len(),
        });
    }
    let mut max = 0.0f64;
    for (index, &value) in strengths.iter().enumerate() {
        if !value.is_finite() {
            return Err(ValidateError::NonFinite { index, value });
        }
        if value < 0.0 {
            return Err(ValidateError::Negative { index, value });
        }
        max = max.max(value);
    }
    if max <= 0.0 {
        return Err(ValidateError::AllZero);
    }
    Ok(())
}

/// Checks that `probs` is a normalized distribution: every mass finite and
/// in `[0, 1 + tol]`, masses summing to 1 within `tol`. This is the
/// row-stochastic invariant a readout channel's rows and a frequency
/// table both obey.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn validate_distribution(probs: &[f64], tol: f64) -> Result<(), ValidateError> {
    let mut sum = 0.0f64;
    for (index, &value) in probs.iter().enumerate() {
        if !value.is_finite() {
            return Err(ValidateError::NonFinite { index, value });
        }
        if value < 0.0 {
            return Err(ValidateError::Negative { index, value });
        }
        if value > 1.0 + tol {
            return Err(ValidateError::NotNormalized { sum: value });
        }
        sum += value;
    }
    if (sum - 1.0).abs() > tol {
        return Err(ValidateError::NotNormalized { sum });
    }
    Ok(())
}

/// Clamps NaN, infinite, and negative entries of `values` to 0 and
/// renormalizes the remainder to sum to 1 (left untouched when everything
/// clamps to zero). Returns the number of entries clamped; the count is
/// also recorded in the process-wide ledger.
///
/// This is the recovery path for rescaled masses (e.g. AIM's canary
/// likelihoods): a single rotten entry must not poison the ranking or
/// crash the comparison sort.
pub fn clamp_and_renormalize(values: &mut [f64]) -> u64 {
    let mut clamped = 0u64;
    for v in values.iter_mut() {
        if !v.is_finite() || *v < 0.0 {
            *v = 0.0;
            clamped += 1;
        }
    }
    let sum: f64 = values.iter().sum();
    if sum > 0.0 && clamped > 0 {
        for v in values.iter_mut() {
            *v /= sum;
        }
    }
    record_clamps(clamped);
    clamped
}

/// Clamps one scalar mass: returns the value unchanged when it is finite
/// and non-negative, otherwise 0 (recording one clamp in the ledger).
pub fn clamp_mass(value: f64) -> f64 {
    if value.is_finite() && value >= 0.0 {
        value
    } else {
        record_clamps(1);
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_strengths_pass() {
        assert!(validate_strengths(2, &[1.0, 0.5, 0.0, 0.25]).is_ok());
    }

    #[test]
    fn strength_violations_are_named() {
        let e = validate_strengths(2, &[1.0, 0.5]).unwrap_err();
        assert!(matches!(e, ValidateError::WrongLength { width: 2, len: 2 }));
        let e = validate_strengths(1, &[1.0, f64::NAN]).unwrap_err();
        assert!(matches!(e, ValidateError::NonFinite { index: 1, .. }));
        let e = validate_strengths(1, &[f64::INFINITY, 1.0]).unwrap_err();
        assert!(matches!(e, ValidateError::NonFinite { index: 0, .. }));
        let e = validate_strengths(1, &[1.0, -0.1]).unwrap_err();
        assert!(matches!(e, ValidateError::Negative { index: 1, .. }));
        let e = validate_strengths(1, &[0.0, 0.0]).unwrap_err();
        assert_eq!(e, ValidateError::AllZero);
        assert_eq!(e.to_string(), "all strengths are zero");
    }

    #[test]
    fn distribution_checks() {
        assert!(validate_distribution(&[0.25; 4], 1e-9).is_ok());
        assert!(validate_distribution(&[0.5, 0.6], 1e-9).is_err());
        assert!(validate_distribution(&[1.5, -0.5], 1e-9).is_err());
        assert!(validate_distribution(&[0.5, f64::NAN], 1e-9).is_err());
    }

    #[test]
    fn clamp_and_renormalize_recovers_and_counts() {
        let before = invariant_clamps();
        let mut v = [0.5, f64::NAN, -1.0, 0.5, f64::INFINITY];
        let clamped = clamp_and_renormalize(&mut v);
        assert_eq!(clamped, 3);
        assert_eq!(invariant_clamps() - before, 3);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], 0.0);
        assert_eq!(v[4], 0.0);
        // A healthy vector is untouched and counts nothing.
        let mut healthy = [0.25, 0.75];
        assert_eq!(clamp_and_renormalize(&mut healthy), 0);
        assert_eq!(healthy, [0.25, 0.75]);
    }

    #[test]
    fn clamp_mass_guards_scalars() {
        assert_eq!(clamp_mass(0.5), 0.5);
        assert_eq!(clamp_mass(0.0), 0.0);
        let before = invariant_clamps();
        assert_eq!(clamp_mass(f64::NAN), 0.0);
        assert_eq!(clamp_mass(-2.0), 0.0);
        assert_eq!(clamp_mass(f64::NEG_INFINITY), 0.0);
        assert_eq!(invariant_clamps() - before, 3);
    }
}
