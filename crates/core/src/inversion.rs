//! Inversion strings — the mechanism of Invert-and-Measure (paper §5).
//!
//! An [`InversionString`] describes which qubits are flipped (with X gates)
//! immediately before measurement. Measuring under inversion string `m`
//! turns an output `s` into `s ⊕ m`; XOR-correcting the measured log by the
//! same `m` restores the original labels while the *physical* measurement
//! happened in the transformed basis. Choosing `m` so that likely outputs
//! land on strong states is the entire trick.

use qsim::{BitString, Circuit, Counts};
use std::fmt;

/// A pre-measurement inversion pattern over `n` qubits.
///
/// # Examples
///
/// Applying and correcting an inversion round-trips the logical results:
///
/// ```
/// use invmeas::InversionString;
/// use qsim::{Circuit, Counts};
///
/// let inv = InversionString::full(3);
/// let circuit = Circuit::basis_state_preparation("110".parse()?);
/// let transformed = inv.apply(&circuit);
/// // The transformed circuit physically produces 001; the correction
/// // relabels it back to 110.
/// let mut raw = Counts::new(3);
/// raw.record("001".parse()?);
/// let corrected = inv.correct(&raw);
/// assert_eq!(corrected.get(&"110".parse()?), 1);
/// assert_eq!(transformed.len(), circuit.len() + 3);
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InversionString {
    mask: BitString,
}

impl InversionString {
    /// The standard mode: no inversion (`00…0`).
    pub fn standard(n: usize) -> Self {
        InversionString {
            mask: BitString::zeros(n),
        }
    }

    /// The fully inverted mode (`11…1`): every qubit is flipped before
    /// measurement.
    pub fn full(n: usize) -> Self {
        InversionString {
            mask: BitString::ones(n),
        }
    }

    /// Even-qubit inversion (`…0101`): flips qubits 0, 2, 4, ….
    pub fn even(n: usize) -> Self {
        InversionString {
            mask: BitString::even_mask(n),
        }
    }

    /// Odd-qubit inversion (`…1010`): flips qubits 1, 3, 5, ….
    pub fn odd(n: usize) -> Self {
        InversionString {
            mask: BitString::odd_mask(n),
        }
    }

    /// An arbitrary inversion pattern.
    pub fn from_mask(mask: BitString) -> Self {
        InversionString { mask }
    }

    /// The targeted inversion that measures `predicted` in the basis of
    /// `strongest`: `predicted ⊕ strongest`. This is AIM's adaptive string
    /// (§6.2.3) — when the machine's strongest state is all-zeros it reduces
    /// to the predicted output itself.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn targeting(predicted: BitString, strongest: BitString) -> Self {
        InversionString {
            mask: predicted ^ strongest,
        }
    }

    /// The four-string set used by the paper's SIM configuration (§5.3):
    /// standard, full, even, and odd inversion — splitting the Hamming
    /// space into four parts.
    pub fn sim_four(n: usize) -> Vec<InversionString> {
        vec![
            InversionString::standard(n),
            InversionString::full(n),
            InversionString::even(n),
            InversionString::odd(n),
        ]
    }

    /// The two-string set of basic SIM (§5.2): standard and full inversion.
    pub fn sim_two(n: usize) -> Vec<InversionString> {
        vec![InversionString::standard(n), InversionString::full(n)]
    }

    /// The underlying flip mask.
    pub fn mask(&self) -> BitString {
        self.mask
    }

    /// The register width.
    pub fn width(&self) -> usize {
        self.mask.width()
    }

    /// Whether this is the standard (identity) mode.
    pub fn is_standard(&self) -> bool {
        self.mask.hamming_weight() == 0
    }

    /// The state that `output` is physically measured in under this
    /// inversion.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn measured_state(&self, output: BitString) -> BitString {
        output ^ self.mask
    }

    /// Returns a copy of `circuit` with the inversion's X gates appended.
    ///
    /// # Panics
    ///
    /// Panics if the circuit width differs from the inversion width.
    #[must_use]
    pub fn apply(&self, circuit: &Circuit) -> Circuit {
        circuit.with_premeasure_inversion(self.mask)
    }

    /// XOR-corrects a measured log back into the original output labels.
    ///
    /// # Panics
    ///
    /// Panics if the log width differs from the inversion width.
    #[must_use]
    pub fn correct(&self, measured: &Counts) -> Counts {
        measured.xor_corrected(self.mask)
    }
}

impl fmt::Display for InversionString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inv[{}]", self.mask)
    }
}

impl From<BitString> for InversionString {
    fn from(mask: BitString) -> Self {
        InversionString::from_mask(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn constructors() {
        assert_eq!(InversionString::standard(4).mask(), bs("0000"));
        assert_eq!(InversionString::full(4).mask(), bs("1111"));
        assert_eq!(InversionString::even(4).mask(), bs("0101"));
        assert_eq!(InversionString::odd(4).mask(), bs("1010"));
        assert!(InversionString::standard(4).is_standard());
        assert!(!InversionString::full(4).is_standard());
    }

    #[test]
    fn sim_sets() {
        let four = InversionString::sim_four(5);
        assert_eq!(four.len(), 4);
        // The four strings split Hamming space: pairwise distinct.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(four[i], four[j]);
            }
        }
        assert_eq!(InversionString::sim_two(5).len(), 2);
    }

    #[test]
    fn targeting_maps_prediction_to_strongest() {
        let predicted = bs("10110");
        let strongest = bs("00001");
        let inv = InversionString::targeting(predicted, strongest);
        assert_eq!(inv.measured_state(predicted), strongest);
    }

    #[test]
    fn targeting_with_zero_strongest_is_prediction() {
        let predicted = bs("1011");
        let inv = InversionString::targeting(predicted, BitString::zeros(4));
        assert_eq!(inv.mask(), predicted);
    }

    #[test]
    fn apply_appends_x_gates() {
        let c = Circuit::new(4);
        let inv = InversionString::from_mask(bs("0110"));
        let applied = inv.apply(&c);
        assert_eq!(applied.len(), 2);
        assert_eq!(InversionString::standard(4).apply(&c), c);
    }

    #[test]
    fn correct_roundtrips_counts() {
        let mut measured = Counts::new(3);
        measured.record_n(bs("010"), 9);
        measured.record_n(bs("111"), 1);
        let inv = InversionString::from_mask(bs("101"));
        let corrected = inv.correct(&measured);
        assert_eq!(corrected.get(&bs("111")), 9);
        assert_eq!(corrected.get(&bs("010")), 1);
        // Correcting twice restores the measured log.
        assert_eq!(inv.correct(&corrected), measured);
    }

    #[test]
    fn display_shows_mask() {
        assert_eq!(InversionString::full(3).to_string(), "inv[111]");
    }
}
