//! Persistence for RBMS machine profiles.
//!
//! AIM's machine profile is expensive to measure (§6.2.1) but stable across
//! calibration windows (§6.1), so real deployments characterize once per
//! calibration cycle and reuse the table. This module gives [`RbmsTable`] a
//! plain-text serialization — human-inspectable, diff-able, and free of
//! extra dependencies — plus file helpers.
//!
//! Two formats are understood:
//!
//! ```text
//! rbms v1            rbms v2
//! width 5            device ibmqx4
//! trials 512000      method brute
//! 00000 0.903700     seed 2019
//! 00001 0.851200     window 0
//! …                  width 5
//!                    trials 512000
//!                    00000 0.903700
//!                    …
//!                    crc32 7a4fc019
//! ```
//!
//! `v2` adds provenance metadata ([`ProfileMeta`]) and a CRC32 footer (see
//! [`crate::checksum`]) covering every preceding byte, so bit rot and
//! truncation are detected as [`ProfileError::Checksum`] instead of being
//! parsed into a silently-wrong table. New profiles are saved as `v2`;
//! existing `v1` files load transparently (with no metadata). Profiles that
//! fail the checksum or validation are never deleted — callers quarantine
//! them aside with [`quarantine_profile`] for post-mortem inspection.

use crate::checksum::crc32;
use crate::rbms::RbmsTable;
use invmeas_faults::{Fault, FaultInjector, FaultSite};
use qsim::BitString;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Provenance metadata carried in an `rbms v2` profile header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileMeta {
    /// Device label the profile was characterized on.
    pub device: String,
    /// Characterization method (`brute`, `esct`, `awct`, …).
    pub method: String,
    /// Characterization job seed.
    pub seed: u64,
    /// AWCT window size (0 when not applicable).
    pub window: usize,
}

impl Default for ProfileMeta {
    fn default() -> Self {
        ProfileMeta {
            device: "unknown".into(),
            method: "unknown".into(),
            seed: 0,
            window: 0,
        }
    }
}

/// Error loading a persisted profile.
#[derive(Debug)]
pub enum ProfileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The text is not a valid profile.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A `v2` profile's CRC32 footer disagrees with its content — the file
    /// was bit-rotted, truncated, or tampered with after it was written.
    Checksum {
        /// The checksum the footer declares.
        expected: u32,
        /// The checksum the content actually hashes to.
        found: u32,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "profile i/o error: {e}"),
            ProfileError::Parse { line, message } => {
                write!(f, "profile parse error at line {line}: {message}")
            }
            ProfileError::Checksum { expected, found } => write!(
                f,
                "profile checksum mismatch: footer says {expected:08x}, content hashes to {found:08x}"
            ),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Io(e) => Some(e),
            ProfileError::Parse { .. } | ProfileError::Checksum { .. } => None,
        }
    }
}

impl From<std::io::Error> for ProfileError {
    fn from(e: std::io::Error) -> Self {
        ProfileError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> ProfileError {
    ProfileError::Parse {
        line,
        message: message.into(),
    }
}

/// Header tokens must stay single-line and whitespace-free.
fn sanitize_token(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

impl RbmsTable {
    /// Serializes the profile to the legacy `v1` plain-text format (no
    /// metadata, no checksum). Kept as the canonical in-memory text form;
    /// files are written as `v2` via [`save`](RbmsTable::save).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "rbms v1");
        let _ = writeln!(out, "width {}", self.width());
        let _ = writeln!(out, "trials {}", self.trials_used());
        for s in BitString::all(self.width()) {
            let _ = writeln!(out, "{s} {:.17e}", self.strength(s));
        }
        out
    }

    /// Serializes the profile to the `v2` format: provenance metadata plus
    /// a CRC32 footer over every preceding byte.
    pub fn to_text_v2(&self, meta: &ProfileMeta) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "rbms v2");
        let _ = writeln!(out, "device {}", sanitize_token(&meta.device));
        let _ = writeln!(out, "method {}", sanitize_token(&meta.method));
        let _ = writeln!(out, "seed {}", meta.seed);
        let _ = writeln!(out, "window {}", meta.window);
        let _ = writeln!(out, "width {}", self.width());
        let _ = writeln!(out, "trials {}", self.trials_used());
        for s in BitString::all(self.width()) {
            let _ = writeln!(out, "{s} {:.17e}", self.strength(s));
        }
        let footer = format!("crc32 {:08x}\n", crc32(out.as_bytes()));
        out.push_str(&footer);
        out
    }

    /// Parses a profile from either text format, discarding any metadata.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Parse`] naming the offending line on any
    /// malformed input, or [`ProfileError::Checksum`] when a `v2` footer
    /// disagrees with the content.
    pub fn from_text(text: &str) -> Result<RbmsTable, ProfileError> {
        Ok(RbmsTable::from_text_with_meta(text)?.0)
    }

    /// Parses a profile from either text format. `v2` profiles return
    /// their [`ProfileMeta`]; `v1` profiles return `None`.
    ///
    /// # Errors
    ///
    /// As [`from_text`](RbmsTable::from_text).
    pub fn from_text_with_meta(
        text: &str,
    ) -> Result<(RbmsTable, Option<ProfileMeta>), ProfileError> {
        let header = text
            .lines()
            .next()
            .ok_or_else(|| parse_err(1, "empty profile"))?;
        match header.trim() {
            "rbms v1" => Ok((parse_v1(text)?, None)),
            "rbms v2" => parse_v2(text).map(|(t, m)| (t, Some(m))),
            _ => Err(parse_err(1, format!("bad header {header:?}"))),
        }
    }

    /// Writes the profile to a file in the `v2` format (default metadata),
    /// crash-safely.
    ///
    /// The text is written to a `.tmp` sibling in the same directory and
    /// atomically renamed over `path`, so a crash (or torn write) mid-save
    /// leaves either the previous profile or no profile at the final path
    /// — never a truncated one. The temp file is cleaned up on failure.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ProfileError> {
        self.save_with(path, &invmeas_faults::NoFaults)
    }

    /// [`save`](RbmsTable::save) with a fault-injection hook at the
    /// [`FaultSite::ProfileWrite`] site.
    ///
    /// Injected faults model a failing disk: `Torn` writes a prefix of the
    /// bytes and then fails (the rename never happens), `Error` fails
    /// before any byte lands, and `Latency` stalls the write. In all
    /// failure cases the final `path` is left untouched.
    ///
    /// # Errors
    ///
    /// Propagates real I/O failures and surfaces injected ones.
    pub fn save_with(
        &self,
        path: impl AsRef<Path>,
        faults: &dyn FaultInjector,
    ) -> Result<(), ProfileError> {
        self.save_v2_with(path, &ProfileMeta::default(), faults)
    }

    /// [`save_with`](RbmsTable::save_with) carrying real provenance
    /// metadata into the `v2` header.
    ///
    /// # Errors
    ///
    /// Propagates real I/O failures and surfaces injected ones.
    pub fn save_v2_with(
        &self,
        path: impl AsRef<Path>,
        meta: &ProfileMeta,
        faults: &dyn FaultInjector,
    ) -> Result<(), ProfileError> {
        let path = path.as_ref();
        let fault = faults.check(FaultSite::ProfileWrite);
        if let Some(f) = &fault {
            f.apply_latency();
            if let Fault::Error(m) = f {
                return Err(ProfileError::Io(std::io::Error::other(m.clone())));
            }
        }
        let text = self.to_text_v2(meta);
        let tmp = tmp_sibling(path);
        let result = (|| -> Result<(), ProfileError> {
            let mut file = std::fs::File::create(&tmp)?;
            if matches!(fault, Some(Fault::Torn)) {
                // A torn write: some bytes land in the temp file, then the
                // device gives up. The final path must never see them.
                file.write_all(&text.as_bytes()[..text.len() / 2])?;
                file.sync_all().ok();
                return Err(ProfileError::Io(std::io::Error::other(
                    "injected torn write",
                )));
            }
            file.write_all(text.as_bytes())?;
            file.sync_all().ok();
            drop(file);
            std::fs::rename(&tmp, path)?;
            Ok(())
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    /// Loads a profile from a file (either format).
    ///
    /// # Errors
    ///
    /// Returns I/O, parse, or checksum failures.
    pub fn load(path: impl AsRef<Path>) -> Result<RbmsTable, ProfileError> {
        RbmsTable::load_with(path, &invmeas_faults::NoFaults)
    }

    /// Loads a profile plus its `v2` metadata (`None` for `v1` files).
    ///
    /// # Errors
    ///
    /// Returns I/O, parse, or checksum failures.
    pub fn load_with_meta(
        path: impl AsRef<Path>,
    ) -> Result<(RbmsTable, Option<ProfileMeta>), ProfileError> {
        RbmsTable::from_text_with_meta(&std::fs::read_to_string(path)?)
    }

    /// [`load`](RbmsTable::load) with a fault-injection hook at the
    /// [`FaultSite::ProfileRead`] site.
    ///
    /// `Corrupt` garbles the bytes after reading (modelling on-disk rot —
    /// the parser must reject, not mis-load), `Error` fails the read, and
    /// `Latency` stalls it.
    ///
    /// # Errors
    ///
    /// Returns I/O, parse, or checksum failures, real or injected.
    pub fn load_with(
        path: impl AsRef<Path>,
        faults: &dyn FaultInjector,
    ) -> Result<RbmsTable, ProfileError> {
        let fault = faults.check(FaultSite::ProfileRead);
        if let Some(f) = &fault {
            f.apply_latency();
            if let Fault::Error(m) = f {
                return Err(ProfileError::Io(std::io::Error::other(m.clone())));
            }
        }
        let mut text = std::fs::read_to_string(path)?;
        if matches!(fault, Some(Fault::Corrupt)) {
            // Garble the middle of the payload; headers survive so the
            // corruption is caught by the body checks, not the header.
            let mid = text.len() / 2;
            text.replace_range(mid..(mid + 1).min(text.len()), "\u{0}");
            text.push_str("\ngarbage trailing row");
        }
        RbmsTable::from_text(&text)
    }
}

/// Parses the legacy `v1` format.
fn parse_v1(text: &str) -> Result<RbmsTable, ProfileError> {
    let mut lines = text.lines().enumerate();
    lines.next(); // header, already matched by the dispatcher
    let (_, width_line) = lines.next().ok_or_else(|| parse_err(2, "missing width"))?;
    let width = parse_width(width_line, 2)?;
    let (_, trials_line) = lines.next().ok_or_else(|| parse_err(3, "missing trials"))?;
    let trials = parse_trials(trials_line, 3)?;
    build_table(width, trials, 3, lines)
}

/// Parses the `v2` format: checksum footer first (a rotten file must fail
/// the integrity check before any of its content is trusted), then the
/// metadata header, then the shared body.
fn parse_v2(text: &str) -> Result<(RbmsTable, ProfileMeta), ProfileError> {
    let line_count = text.lines().count();
    let footer_start = text
        .rfind("\ncrc32 ")
        .map(|i| i + 1)
        .ok_or_else(|| parse_err(line_count.max(1), "missing crc32 footer"))?;
    let (body, footer) = text.split_at(footer_start);
    let stored = footer
        .trim()
        .strip_prefix("crc32 ")
        .and_then(|h| u32::from_str_radix(h.trim(), 16).ok())
        .ok_or_else(|| parse_err(line_count, format!("bad crc32 footer {:?}", footer.trim())))?;
    let found = crc32(body.as_bytes());
    if found != stored {
        return Err(ProfileError::Checksum {
            expected: stored,
            found,
        });
    }

    let mut lines = body.lines().enumerate();
    lines.next(); // header, already matched by the dispatcher
    let mut meta_field = |prefix: &str, lineno: usize| -> Result<String, ProfileError> {
        let (_, line) = lines
            .next()
            .ok_or_else(|| parse_err(lineno, format!("missing {}", prefix.trim())))?;
        line.trim()
            .strip_prefix(prefix)
            .map(str::to_string)
            .ok_or_else(|| parse_err(lineno, format!("bad {} line {line:?}", prefix.trim())))
    };
    let device = meta_field("device ", 2)?;
    let method = meta_field("method ", 3)?;
    let seed: u64 = meta_field("seed ", 4)?
        .parse()
        .map_err(|_| parse_err(4, "bad seed"))?;
    let window: usize = meta_field("window ", 5)?
        .parse()
        .map_err(|_| parse_err(5, "bad window"))?;
    let (_, width_line) = lines.next().ok_or_else(|| parse_err(6, "missing width"))?;
    let width = parse_width(width_line, 6)?;
    let (_, trials_line) = lines.next().ok_or_else(|| parse_err(7, "missing trials"))?;
    let trials = parse_trials(trials_line, 7)?;
    let table = build_table(width, trials, 7, lines)?;
    Ok((
        table,
        ProfileMeta {
            device,
            method,
            seed,
            window,
        },
    ))
}

fn parse_width(line: &str, lineno: usize) -> Result<usize, ProfileError> {
    let width: usize = line
        .trim()
        .strip_prefix("width ")
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| parse_err(lineno, format!("bad width line {line:?}")))?;
    if width == 0 || width > 20 {
        return Err(parse_err(lineno, format!("unsupported width {width}")));
    }
    Ok(width)
}

fn parse_trials(line: &str, lineno: usize) -> Result<u64, ProfileError> {
    line.trim()
        .strip_prefix("trials ")
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err(lineno, format!("bad trials line {line:?}")))
}

/// Parses the table body shared by both formats and constructs the table
/// through the validating constructor. `lines` yields `(0-based index in
/// the original text, line)`; `header_lines` is the 1-based number of the
/// last header line (for errors on an empty body).
fn build_table<'a>(
    width: usize,
    trials: u64,
    header_lines: usize,
    lines: impl Iterator<Item = (usize, &'a str)>,
) -> Result<RbmsTable, ProfileError> {
    let mut strengths = vec![f64::NAN; 1usize << width];
    let mut seen = 0usize;
    let mut last_line = header_lines;
    for (idx, line) in lines {
        let lineno = idx + 1;
        last_line = lineno;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (state, value) = line
            .split_once(' ')
            .ok_or_else(|| parse_err(lineno, format!("malformed entry {line:?}")))?;
        let s: BitString = state
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad state {state:?}: {e}")))?;
        if s.width() != width {
            return Err(parse_err(lineno, format!("state {state} has wrong width")));
        }
        let v: f64 = value
            .trim()
            .parse()
            .map_err(|_| parse_err(lineno, format!("bad strength {value:?}")))?;
        if !v.is_finite() || v < 0.0 {
            return Err(parse_err(lineno, format!("invalid strength {v}")));
        }
        if !strengths[s.index()].is_nan() {
            return Err(parse_err(lineno, format!("duplicate entry for {state}")));
        }
        strengths[s.index()] = v;
        seen += 1;
    }
    // The width header is a promise about the table body: a declared
    // width of `w` requires exactly `2^w` rows. Truncated or padded
    // files (the common corruption when profiles are copied around)
    // must be rejected, not silently zero/NaN-filled.
    if seen != strengths.len() {
        let first_missing = strengths
            .iter()
            .position(|v| v.is_nan())
            .map(|i| BitString::from_value(i as u64, width))
            .map(|s| format!("; first missing {s}"))
            .unwrap_or_default();
        return Err(parse_err(
            last_line,
            format!(
                "width {width} declares {} table rows, found {seen}{first_missing}",
                strengths.len()
            ),
        ));
    }
    let mut table = RbmsTable::try_from_strengths(width, strengths)
        .map_err(|e| parse_err(last_line, e.to_string()))?;
    table.set_trials_used(trials);
    Ok(table)
}

/// A `.tmp` sibling of `path`, in the same directory so the final rename
/// never crosses a filesystem boundary.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Installs profile text received over the wire from another node.
///
/// The text must be a checksummed `rbms v2` profile: it is fully parsed
/// first — which verifies the CRC32 footer before any content is
/// trusted — and only then written **byte-for-byte** to `path` via a
/// temp sibling and atomic rename. Writing the received bytes rather
/// than a re-serialization keeps replicas byte-identical to the owner's
/// file, so convergence can be asserted with `cmp`. A payload that
/// fails the checksum is refused without touching the filesystem — the
/// local copy (if any) is *not* quarantined, because nothing local is
/// damaged; the sender's payload is.
///
/// Returns the parsed table and its metadata.
///
/// # Errors
///
/// [`ProfileError::Checksum`]/[`ProfileError::Parse`] on a bad payload
/// (`v1` text is refused — it carries no checksum, so wire integrity
/// cannot be verified); I/O failures from the install itself.
pub fn install_profile_text(
    path: &Path,
    text: &str,
) -> Result<(RbmsTable, ProfileMeta), ProfileError> {
    let (table, meta) = RbmsTable::from_text_with_meta(text)?;
    let Some(meta) = meta else {
        return Err(parse_err(
            1,
            "replicated profiles must be rbms v2 (checksummed)",
        ));
    };
    let tmp = tmp_sibling(path);
    let result = (|| -> Result<(), ProfileError> {
        std::fs::write(&tmp, text.as_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result.map(|()| (table, meta))
}

/// Moves a damaged profile aside for post-mortem inspection: `path` is
/// renamed to `<name>.quarantined` (then `.quarantined.1`, `.2`, … if
/// earlier quarantines exist). The file is **never deleted** — a profile
/// that failed its checksum is evidence, and deleting it would destroy the
/// only copy of whatever went wrong.
///
/// Returns the quarantine path.
///
/// # Errors
///
/// Propagates the rename failure.
pub fn quarantine_profile(path: &Path) -> std::io::Result<PathBuf> {
    let base = {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".quarantined");
        name
    };
    let mut target = path.with_file_name(&base);
    let mut k = 1u32;
    while target.exists() {
        let mut name = base.clone();
        name.push(format!(".{k}"));
        target = path.with_file_name(name);
        k += 1;
    }
    std::fs::rename(path, &target)?;
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnoise::DeviceModel;

    #[test]
    fn text_roundtrip() {
        let table = RbmsTable::exact(&DeviceModel::ibmqx4().readout());
        let text = table.to_text();
        let back = RbmsTable::from_text(&text).unwrap();
        assert_eq!(back.width(), table.width());
        for s in BitString::all(5) {
            assert!((back.strength(s) - table.strength(s)).abs() < 1e-12);
        }
    }

    #[test]
    fn trials_survive_roundtrip() {
        let mut table = RbmsTable::from_strengths(2, vec![1.0, 0.8, 0.9, 0.5]);
        table.set_trials_used(4242);
        let back = RbmsTable::from_text(&table.to_text()).unwrap();
        assert_eq!(back.trials_used(), 4242);
    }

    #[test]
    fn v2_text_roundtrip_with_meta() {
        let mut table = RbmsTable::exact(&DeviceModel::ibmqx4().readout());
        table.set_trials_used(512_000);
        let meta = ProfileMeta {
            device: "ibmqx4".into(),
            method: "brute".into(),
            seed: 2019,
            window: 0,
        };
        let text = table.to_text_v2(&meta);
        assert!(text.starts_with("rbms v2\n"));
        let (back, back_meta) = RbmsTable::from_text_with_meta(&text).unwrap();
        assert_eq!(back_meta, Some(meta));
        assert_eq!(back.trials_used(), 512_000);
        assert_eq!(back.strengths(), table.strengths());
        // And the meta-discarding entry point agrees.
        assert_eq!(
            RbmsTable::from_text(&text).unwrap().strengths(),
            table.strengths()
        );
    }

    #[test]
    fn v1_profiles_still_load_and_report_no_meta() {
        // Migration path: a v1 file written by an older release loads
        // unchanged through the same entry points that handle v2.
        let table = RbmsTable::exact(&DeviceModel::ibmqx4().readout());
        let v1_text = table.to_text();
        let (back, meta) = RbmsTable::from_text_with_meta(&v1_text).unwrap();
        assert_eq!(meta, None);
        assert_eq!(back.strengths(), table.strengths());

        // On-disk migration: drop a v1 file, load it, re-save (v2), reload.
        let dir = std::env::temp_dir().join("invmeas-v1-migration-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.rbms");
        std::fs::write(&path, &v1_text).unwrap();
        let migrated = RbmsTable::load(&path).unwrap();
        migrated.save(&path).unwrap();
        let (reloaded, meta) = RbmsTable::load_with_meta(&path).unwrap();
        assert_eq!(meta, Some(ProfileMeta::default()));
        assert_eq!(reloaded.strengths(), table.strengths());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_checksum_detects_single_bit_flips() {
        let table = RbmsTable::from_strengths(2, vec![1.0, 0.8, 0.9, 0.5]);
        let text = table.to_text_v2(&ProfileMeta::default());
        let footer_start = text.rfind("crc32").unwrap();
        let mut checksum_hits = 0;
        // Flip one bit in every body byte: each flip must be rejected, and
        // flips that keep the text parseable must be caught *by the
        // checksum*, not by luck of the parser.
        for byte in 0..footer_start {
            let mut bytes = text.clone().into_bytes();
            bytes[byte] ^= 0x01;
            let Ok(flipped) = String::from_utf8(bytes) else {
                continue;
            };
            match RbmsTable::from_text(&flipped) {
                Ok(_) => panic!("bit flip at byte {byte} loaded successfully"),
                Err(ProfileError::Checksum { expected, found }) => {
                    assert_ne!(expected, found);
                    checksum_hits += 1;
                }
                Err(_) => {} // header flips may fail dispatch first — still rejected
            }
        }
        assert!(checksum_hits > 0, "no flip exercised the checksum path");
    }

    #[test]
    fn v2_truncation_and_footer_tamper_rejected() {
        let table = RbmsTable::from_strengths(2, vec![1.0, 0.8, 0.9, 0.5]);
        let text = table.to_text_v2(&ProfileMeta::default());
        // Truncation loses the footer entirely.
        let footer_start = text.rfind("crc32").unwrap();
        let err = RbmsTable::from_text(&text[..footer_start]).unwrap_err();
        assert!(err.to_string().contains("missing crc32 footer"), "{err}");
        // A rewritten footer fails against the (unchanged) content.
        let tampered = format!("{}crc32 deadbeef\n", &text[..footer_start]);
        let err = RbmsTable::from_text(&tampered).unwrap_err();
        assert!(
            matches!(
                err,
                ProfileError::Checksum {
                    expected: 0xdeadbeef,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn quarantine_renames_and_never_deletes() {
        let dir = std::env::temp_dir().join("invmeas-quarantine-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qx.rbms");

        std::fs::write(&path, "first bad profile").unwrap();
        let q1 = quarantine_profile(&path).unwrap();
        assert_eq!(q1, dir.join("qx.rbms.quarantined"));
        assert!(!path.exists());

        std::fs::write(&path, "second bad profile").unwrap();
        let q2 = quarantine_profile(&path).unwrap();
        assert_eq!(q2, dir.join("qx.rbms.quarantined.1"));

        // Both bodies survive, untouched.
        assert_eq!(std::fs::read_to_string(&q1).unwrap(), "first bad profile");
        assert_eq!(std::fs::read_to_string(&q2).unwrap(), "second bad profile");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn install_profile_text_is_byte_identical_and_refuses_bad_payloads() {
        let dir = std::env::temp_dir().join("invmeas-install-profile-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replica.rbms");

        let mut table = RbmsTable::from_strengths(2, vec![1.0, 0.8, 0.9, 0.5]);
        table.set_trials_used(1024);
        let meta = ProfileMeta {
            device: "ibmqx4".into(),
            method: "brute".into(),
            seed: 7,
            window: 0,
        };
        let text = table.to_text_v2(&meta);

        // Clean payload: installed byte-for-byte.
        let (back, back_meta) = install_profile_text(&path, &text).unwrap();
        assert_eq!(back_meta, meta);
        assert_eq!(back.strengths(), table.strengths());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);

        // One flipped bit in the body: refused by the checksum, and the
        // previously installed replica is left untouched on disk.
        let mut bytes = text.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let flipped = String::from_utf8(bytes).unwrap();
        let err = install_profile_text(&path, &flipped).unwrap_err();
        assert!(matches!(err, ProfileError::Checksum { .. }), "{err}");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);

        // v1 text carries no checksum: refused outright.
        let err = install_profile_text(&path, &table.to_text()).unwrap_err();
        assert!(err.to_string().contains("rbms v2"), "{err}");

        // Nothing quarantined, no temp litter.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n != "replica.rbms")
            .collect();
        assert!(leftovers.is_empty(), "unexpected files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_roundtrip() {
        let table = RbmsTable::from_strengths(3, (0..8).map(|i| 1.0 - i as f64 * 0.1).collect());
        let dir = std::env::temp_dir().join("invmeas-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qx.rbms");
        table.save(&path).unwrap();
        let back = RbmsTable::load(&path).unwrap();
        for (a, b) in back.strengths().iter().zip(table.strengths()) {
            assert!((a - b).abs() < 1e-15, "{a} vs {b}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_name_lines() {
        let cases = [
            ("", "empty profile"),
            ("nope", "bad header"),
            ("rbms v1\nwidth x", "bad width"),
            ("rbms v1\nwidth 1\ntrials q", "bad trials"),
            ("rbms v1\nwidth 1\ntrials 0\n00 1.0\n01 0.5", "wrong width"),
            ("rbms v1\nwidth 1\ntrials 0\n0garbage", "malformed entry"),
            ("rbms v1\nwidth 1\ntrials 0\n0 abc\n1 0.5", "bad strength"),
        ];
        for (text, expect) in cases {
            let err = RbmsTable::from_text(text).unwrap_err().to_string();
            assert!(err.contains(expect), "{text:?}: {err}");
        }
        // Width-1 states are "0" and "1".
        let good = "rbms v1\nwidth 1\ntrials 10\n0 1.0\n1 0.25";
        assert!(RbmsTable::from_text(good).is_ok());
        // Missing entry, naming the first absent state.
        let missing = "rbms v1\nwidth 1\ntrials 10\n0 1.0";
        let err = RbmsTable::from_text(missing).unwrap_err().to_string();
        assert!(
            err.contains("width 1 declares 2 table rows, found 1"),
            "{err}"
        );
        assert!(err.contains("first missing 1"), "{err}");
        // Duplicate entry.
        let dup = "rbms v1\nwidth 1\ntrials 10\n0 1.0\n0 1.0";
        let err = RbmsTable::from_text(dup).unwrap_err().to_string();
        assert!(err.contains("duplicate"), "{err}");
        // An all-zero body parses row-by-row but fails table validation.
        let zeros = "rbms v1\nwidth 1\ntrials 10\n0 0.0\n1 0.0";
        let err = RbmsTable::from_text(zeros).unwrap_err().to_string();
        assert!(err.contains("all strengths are zero"), "{err}");
    }

    #[test]
    fn width_row_disagreement_rejected_on_roundtrip() {
        // Serialize a healthy profile, then corrupt it the two realistic
        // ways — truncation and padding — and check both are rejected with
        // an error naming the declared width and the observed row count.
        let table = RbmsTable::exact(&DeviceModel::ibmqx4().readout());
        let text = table.to_text();

        let truncated: String = text.lines().take(3 + 20).fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        });
        let err = RbmsTable::from_text(&truncated).unwrap_err().to_string();
        assert!(
            err.contains("width 5 declares 32 table rows, found 20"),
            "{err}"
        );

        // Padding with a row of a *different* width is a width violation…
        let padded = format!("{text}000000 0.5\n");
        let err = RbmsTable::from_text(&padded).unwrap_err().to_string();
        assert!(err.contains("wrong width"), "{err}");
        // …and a same-width extra row necessarily collides with a slot.
        let dup = format!("{text}00000 0.5\n");
        let err = RbmsTable::from_text(&dup).unwrap_err().to_string();
        assert!(err.contains("duplicate"), "{err}");

        // A width header that under-declares the body is caught on the
        // first row wider than the header, before any count check.
        let shrunk = text.replacen("width 5", "width 4", 1);
        let err = RbmsTable::from_text(&shrunk).unwrap_err().to_string();
        assert!(err.contains("wrong width"), "{err}");
    }

    #[test]
    fn negative_strength_rejected() {
        let text = "rbms v1\nwidth 1\ntrials 0\n0 1.0\n1 -0.5";
        assert!(RbmsTable::from_text(text).is_err());
    }

    #[test]
    fn torn_write_never_corrupts_final_path() {
        use invmeas_faults::{Fault, FaultPlan, FaultSite};

        let dir = std::env::temp_dir().join("invmeas-torn-write-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qx.rbms");
        std::fs::remove_file(&path).ok();

        let old = RbmsTable::from_strengths(2, vec![1.0, 0.8, 0.9, 0.5]);
        let new = RbmsTable::from_strengths(2, vec![1.0, 0.7, 0.6, 0.4]);

        // Torn write with nothing at the final path: path stays absent.
        let plan = FaultPlan::new(1)
            .on_nth(FaultSite::ProfileWrite, 1, Fault::Torn)
            .on_nth(FaultSite::ProfileWrite, 3, Fault::Torn);
        assert!(new.save_with(&path, &plan).is_err());
        assert!(!path.exists(), "torn write must not create the final path");

        // Healthy write, then a torn overwrite: the old profile survives.
        old.save_with(&path, &plan).unwrap();
        assert!(new.save_with(&path, &plan).is_err());
        let back = RbmsTable::load(&path).unwrap();
        assert_eq!(back.strengths(), old.strengths());

        // No temp litter either way.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(litter.is_empty(), "temp files left behind: {litter:?}");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_read_is_rejected_not_misloaded() {
        use invmeas_faults::{Fault, FaultPlan, FaultSite};

        let dir = std::env::temp_dir().join("invmeas-corrupt-read-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qx.rbms");
        let table = RbmsTable::from_strengths(2, vec![1.0, 0.8, 0.9, 0.5]);
        table.save(&path).unwrap();

        let plan = FaultPlan::new(2).on_nth(FaultSite::ProfileRead, 1, Fault::Corrupt);
        assert!(RbmsTable::load_with(&path, &plan).is_err());
        // The file itself is intact; a clean read still works.
        assert!(RbmsTable::load_with(&path, &plan).is_ok());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_write_error_fails_before_any_byte() {
        use invmeas_faults::{Fault, FaultPlan, FaultSite};

        let dir = std::env::temp_dir().join("invmeas-write-error-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qx.rbms");
        std::fs::remove_file(&path).ok();

        let table = RbmsTable::from_strengths(1, vec![1.0, 0.5]);
        let plan = FaultPlan::new(3).on_nth(
            FaultSite::ProfileWrite,
            1,
            Fault::Error("disk on fire".into()),
        );
        let err = table.save_with(&path, &plan).unwrap_err().to_string();
        assert!(err.contains("disk on fire"), "{err}");
        assert!(!path.exists());
    }
}
