//! Persistence for RBMS machine profiles.
//!
//! AIM's machine profile is expensive to measure (§6.2.1) but stable across
//! calibration windows (§6.1), so real deployments characterize once per
//! calibration cycle and reuse the table. This module gives [`RbmsTable`] a
//! plain-text serialization — human-inspectable, diff-able, and free of
//! extra dependencies — plus file helpers.
//!
//! Format (line-oriented):
//!
//! ```text
//! rbms v1
//! width 5
//! trials 512000
//! 00000 0.903700
//! 00001 0.851200
//! …
//! ```

use crate::rbms::RbmsTable;
use invmeas_faults::{Fault, FaultInjector, FaultSite};
use qsim::BitString;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Error loading a persisted profile.
#[derive(Debug)]
pub enum ProfileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The text is not a valid profile.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "profile i/o error: {e}"),
            ProfileError::Parse { line, message } => {
                write!(f, "profile parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Io(e) => Some(e),
            ProfileError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ProfileError {
    fn from(e: std::io::Error) -> Self {
        ProfileError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> ProfileError {
    ProfileError::Parse {
        line,
        message: message.into(),
    }
}

impl RbmsTable {
    /// Serializes the profile to the plain-text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "rbms v1");
        let _ = writeln!(out, "width {}", self.width());
        let _ = writeln!(out, "trials {}", self.trials_used());
        for s in BitString::all(self.width()) {
            let _ = writeln!(out, "{s} {:.17e}", self.strength(s));
        }
        out
    }

    /// Parses a profile from the plain-text format.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Parse`] naming the offending line on any
    /// malformed input (bad header, wrong entry count, invalid strengths).
    pub fn from_text(text: &str) -> Result<RbmsTable, ProfileError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| parse_err(1, "empty profile"))?;
        if header.trim() != "rbms v1" {
            return Err(parse_err(1, format!("bad header {header:?}")));
        }
        let (_, width_line) = lines
            .next()
            .ok_or_else(|| parse_err(2, "missing width"))?;
        let width: usize = width_line
            .trim()
            .strip_prefix("width ")
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| parse_err(2, format!("bad width line {width_line:?}")))?;
        if width == 0 || width > 20 {
            return Err(parse_err(2, format!("unsupported width {width}")));
        }
        let (_, trials_line) = lines
            .next()
            .ok_or_else(|| parse_err(3, "missing trials"))?;
        let trials: u64 = trials_line
            .trim()
            .strip_prefix("trials ")
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(3, format!("bad trials line {trials_line:?}")))?;

        let mut strengths = vec![f64::NAN; 1usize << width];
        let mut seen = 0usize;
        let mut last_line = 3usize;
        for (idx, line) in lines {
            let lineno = idx + 1;
            last_line = lineno;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (state, value) = line
                .split_once(' ')
                .ok_or_else(|| parse_err(lineno, format!("malformed entry {line:?}")))?;
            let s: BitString = state
                .parse()
                .map_err(|e| parse_err(lineno, format!("bad state {state:?}: {e}")))?;
            if s.width() != width {
                return Err(parse_err(lineno, format!("state {state} has wrong width")));
            }
            let v: f64 = value
                .trim()
                .parse()
                .map_err(|_| parse_err(lineno, format!("bad strength {value:?}")))?;
            if !v.is_finite() || v < 0.0 {
                return Err(parse_err(lineno, format!("invalid strength {v}")));
            }
            if !strengths[s.index()].is_nan() {
                return Err(parse_err(lineno, format!("duplicate entry for {state}")));
            }
            strengths[s.index()] = v;
            seen += 1;
        }
        // The width header is a promise about the table body: a declared
        // width of `w` requires exactly `2^w` rows. Truncated or padded
        // files (the common corruption when profiles are copied around)
        // must be rejected, not silently zero/NaN-filled.
        if seen != strengths.len() {
            return Err(parse_err(
                last_line,
                format!(
                    "width {width} declares {} table rows, found {seen}",
                    strengths.len()
                ),
            ));
        }
        let mut table = RbmsTable::from_strengths(width, strengths);
        table.set_trials_used(trials);
        Ok(table)
    }

    /// Writes the profile to a file, crash-safely.
    ///
    /// The text is written to a `.tmp` sibling in the same directory and
    /// atomically renamed over `path`, so a crash (or torn write) mid-save
    /// leaves either the previous profile or no profile at the final path
    /// — never a truncated one. The temp file is cleaned up on failure.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ProfileError> {
        self.save_with(path, &invmeas_faults::NoFaults)
    }

    /// [`save`](RbmsTable::save) with a fault-injection hook at the
    /// [`FaultSite::ProfileWrite`] site.
    ///
    /// Injected faults model a failing disk: `Torn` writes a prefix of the
    /// bytes and then fails (the rename never happens), `Error` fails
    /// before any byte lands, and `Latency` stalls the write. In all
    /// failure cases the final `path` is left untouched.
    ///
    /// # Errors
    ///
    /// Propagates real I/O failures and surfaces injected ones.
    pub fn save_with(
        &self,
        path: impl AsRef<Path>,
        faults: &dyn FaultInjector,
    ) -> Result<(), ProfileError> {
        let path = path.as_ref();
        let fault = faults.check(FaultSite::ProfileWrite);
        if let Some(f) = &fault {
            f.apply_latency();
            if let Fault::Error(m) = f {
                return Err(ProfileError::Io(std::io::Error::other(m.clone())));
            }
        }
        let text = self.to_text();
        let tmp = tmp_sibling(path);
        let result = (|| -> Result<(), ProfileError> {
            let mut file = std::fs::File::create(&tmp)?;
            if matches!(fault, Some(Fault::Torn)) {
                // A torn write: some bytes land in the temp file, then the
                // device gives up. The final path must never see them.
                file.write_all(&text.as_bytes()[..text.len() / 2])?;
                file.sync_all().ok();
                return Err(ProfileError::Io(std::io::Error::other(
                    "injected torn write",
                )));
            }
            file.write_all(text.as_bytes())?;
            file.sync_all().ok();
            drop(file);
            std::fs::rename(&tmp, path)?;
            Ok(())
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    /// Loads a profile from a file.
    ///
    /// # Errors
    ///
    /// Returns I/O or parse failures.
    pub fn load(path: impl AsRef<Path>) -> Result<RbmsTable, ProfileError> {
        RbmsTable::load_with(path, &invmeas_faults::NoFaults)
    }

    /// [`load`](RbmsTable::load) with a fault-injection hook at the
    /// [`FaultSite::ProfileRead`] site.
    ///
    /// `Corrupt` garbles the bytes after reading (modelling on-disk rot —
    /// the parser must reject, not mis-load), `Error` fails the read, and
    /// `Latency` stalls it.
    ///
    /// # Errors
    ///
    /// Returns I/O or parse failures, real or injected.
    pub fn load_with(
        path: impl AsRef<Path>,
        faults: &dyn FaultInjector,
    ) -> Result<RbmsTable, ProfileError> {
        let fault = faults.check(FaultSite::ProfileRead);
        if let Some(f) = &fault {
            f.apply_latency();
            if let Fault::Error(m) = f {
                return Err(ProfileError::Io(std::io::Error::other(m.clone())));
            }
        }
        let mut text = std::fs::read_to_string(path)?;
        if matches!(fault, Some(Fault::Corrupt)) {
            // Garble the middle of the payload; headers survive so the
            // corruption is caught by the body checks, not the header.
            let mid = text.len() / 2;
            text.replace_range(mid..(mid + 1).min(text.len()), "\u{0}");
            text.push_str("\ngarbage trailing row");
        }
        RbmsTable::from_text(&text)
    }
}

/// A `.tmp` sibling of `path`, in the same directory so the final rename
/// never crosses a filesystem boundary.
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnoise::DeviceModel;

    #[test]
    fn text_roundtrip() {
        let table = RbmsTable::exact(&DeviceModel::ibmqx4().readout());
        let text = table.to_text();
        let back = RbmsTable::from_text(&text).unwrap();
        assert_eq!(back.width(), table.width());
        for s in BitString::all(5) {
            assert!((back.strength(s) - table.strength(s)).abs() < 1e-12);
        }
    }

    #[test]
    fn trials_survive_roundtrip() {
        let mut table = RbmsTable::from_strengths(2, vec![1.0, 0.8, 0.9, 0.5]);
        table.set_trials_used(4242);
        let back = RbmsTable::from_text(&table.to_text()).unwrap();
        assert_eq!(back.trials_used(), 4242);
    }

    #[test]
    fn file_roundtrip() {
        let table = RbmsTable::from_strengths(3, (0..8).map(|i| 1.0 - i as f64 * 0.1).collect());
        let dir = std::env::temp_dir().join("invmeas-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qx.rbms");
        table.save(&path).unwrap();
        let back = RbmsTable::load(&path).unwrap();
        for (a, b) in back.strengths().iter().zip(table.strengths()) {
            assert!((a - b).abs() < 1e-15, "{a} vs {b}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_name_lines() {
        let cases = [
            ("", "empty profile"),
            ("nope", "bad header"),
            ("rbms v1\nwidth x", "bad width"),
            ("rbms v1\nwidth 1\ntrials q", "bad trials"),
            ("rbms v1\nwidth 1\ntrials 0\n00 1.0\n01 0.5", "wrong width"),
            ("rbms v1\nwidth 1\ntrials 0\n0garbage", "malformed entry"),
            ("rbms v1\nwidth 1\ntrials 0\n0 abc\n1 0.5", "bad strength"),
        ];
        for (text, expect) in cases {
            let err = RbmsTable::from_text(text).unwrap_err().to_string();
            assert!(err.contains(expect), "{text:?}: {err}");
        }
        // Width-1 states are "0" and "1".
        let good = "rbms v1\nwidth 1\ntrials 10\n0 1.0\n1 0.25";
        assert!(RbmsTable::from_text(good).is_ok());
        // Missing entry.
        let missing = "rbms v1\nwidth 1\ntrials 10\n0 1.0";
        let err = RbmsTable::from_text(missing).unwrap_err().to_string();
        assert!(err.contains("width 1 declares 2 table rows, found 1"), "{err}");
        // Duplicate entry.
        let dup = "rbms v1\nwidth 1\ntrials 10\n0 1.0\n0 1.0";
        let err = RbmsTable::from_text(dup).unwrap_err().to_string();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn width_row_disagreement_rejected_on_roundtrip() {
        // Serialize a healthy profile, then corrupt it the two realistic
        // ways — truncation and padding — and check both are rejected with
        // an error naming the declared width and the observed row count.
        let table = RbmsTable::exact(&DeviceModel::ibmqx4().readout());
        let text = table.to_text();

        let truncated: String = text.lines().take(3 + 20).fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        });
        let err = RbmsTable::from_text(&truncated).unwrap_err().to_string();
        assert!(err.contains("width 5 declares 32 table rows, found 20"), "{err}");

        // Padding with a row of a *different* width is a width violation…
        let padded = format!("{text}000000 0.5\n");
        let err = RbmsTable::from_text(&padded).unwrap_err().to_string();
        assert!(err.contains("wrong width"), "{err}");
        // …and a same-width extra row necessarily collides with a slot.
        let dup = format!("{text}00000 0.5\n");
        let err = RbmsTable::from_text(&dup).unwrap_err().to_string();
        assert!(err.contains("duplicate"), "{err}");

        // A width header that under-declares the body is caught on the
        // first row wider than the header, before any count check.
        let shrunk = text.replacen("width 5", "width 4", 1);
        let err = RbmsTable::from_text(&shrunk).unwrap_err().to_string();
        assert!(err.contains("wrong width"), "{err}");
    }

    #[test]
    fn negative_strength_rejected() {
        let text = "rbms v1\nwidth 1\ntrials 0\n0 1.0\n1 -0.5";
        assert!(RbmsTable::from_text(text).is_err());
    }

    #[test]
    fn torn_write_never_corrupts_final_path() {
        use invmeas_faults::{Fault, FaultPlan, FaultSite};

        let dir = std::env::temp_dir().join("invmeas-torn-write-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qx.rbms");
        std::fs::remove_file(&path).ok();

        let old = RbmsTable::from_strengths(2, vec![1.0, 0.8, 0.9, 0.5]);
        let new = RbmsTable::from_strengths(2, vec![1.0, 0.7, 0.6, 0.4]);

        // Torn write with nothing at the final path: path stays absent.
        let plan = FaultPlan::new(1)
            .on_nth(FaultSite::ProfileWrite, 1, Fault::Torn)
            .on_nth(FaultSite::ProfileWrite, 3, Fault::Torn);
        assert!(new.save_with(&path, &plan).is_err());
        assert!(!path.exists(), "torn write must not create the final path");

        // Healthy write, then a torn overwrite: the old profile survives.
        old.save_with(&path, &plan).unwrap();
        assert!(new.save_with(&path, &plan).is_err());
        let back = RbmsTable::load(&path).unwrap();
        assert_eq!(back.strengths(), old.strengths());

        // No temp litter either way.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(litter.is_empty(), "temp files left behind: {litter:?}");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_read_is_rejected_not_misloaded() {
        use invmeas_faults::{Fault, FaultPlan, FaultSite};

        let dir = std::env::temp_dir().join("invmeas-corrupt-read-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qx.rbms");
        let table = RbmsTable::from_strengths(2, vec![1.0, 0.8, 0.9, 0.5]);
        table.save(&path).unwrap();

        let plan = FaultPlan::new(2).on_nth(FaultSite::ProfileRead, 1, Fault::Corrupt);
        assert!(RbmsTable::load_with(&path, &plan).is_err());
        // The file itself is intact; a clean read still works.
        assert!(RbmsTable::load_with(&path, &plan).is_ok());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_write_error_fails_before_any_byte() {
        use invmeas_faults::{Fault, FaultPlan, FaultSite};

        let dir = std::env::temp_dir().join("invmeas-write-error-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qx.rbms");
        std::fs::remove_file(&path).ok();

        let table = RbmsTable::from_strengths(1, vec![1.0, 0.5]);
        let plan = FaultPlan::new(3)
            .on_nth(FaultSite::ProfileWrite, 1, Fault::Error("disk on fire".into()));
        let err = table.save_with(&path, &plan).unwrap_err().to_string();
        assert!(err.contains("disk on fire"), "{err}");
        assert!(!path.exists());
    }
}
