//! Adaptive Invert-and-Measure (AIM) — paper §6.
//!
//! AIM adapts to *arbitrary* measurement bias in three steps (Figure 12):
//!
//! 1. **Machine profile** — an [`RbmsTable`] built offline (brute force for
//!    small machines, AWCT for large ones).
//! 2. **Canary trials** — 25 % of the budget runs under SIM's four static
//!    strings; the resulting distribution is rescaled by `1 / strength` to
//!    undo the global bias (Equation 1), and the top-k states by likelihood
//!    become the predicted outputs.
//! 3. **Targeted execution** — the remaining 75 % splits across the k
//!    predictions, each run under the inversion string that maps it onto
//!    the machine's *strongest* state.
//!
//! All logs (canary + targeted, XOR-corrected) merge into the final output;
//! the total trial count equals the baseline's.
//!
//! **Cost note:** both the canary (k inversion modes) and the targeted
//! phase (k predicted states) run the *same* base circuit under different
//! trailing X layers, each through one batched
//! [`qnoise::Executor::run_groups`] call — so a readout-only AIM window
//! costs two statevector simulations total (one per phase), independent of
//! the mode/prediction counts.

use crate::inversion::InversionString;
use crate::policy::{split_shots, MeasurementPolicy};
use crate::rbms::RbmsTable;
use crate::sim::StaticInvertMeasure;
use qnoise::Executor;
use qsim::{BitString, Circuit, Counts};
use rand::RngCore;

/// Floor applied to profile strengths when computing likelihoods, so states
/// the profile deems (nearly) unmeasurable cannot produce unbounded
/// likelihood from a single noisy canary hit.
const MIN_STRENGTH: f64 = 1e-3;

/// The AIM policy.
///
/// # Examples
///
/// AIM recovers a weak state's fidelity on the arbitrary-bias machine:
///
/// ```
/// use invmeas::{AdaptiveInvertMeasure, Baseline, MeasurementPolicy, RbmsTable};
/// use qnoise::{DeviceModel, NoisyExecutor};
/// use qsim::{BitString, Circuit};
/// use rand::SeedableRng;
///
/// let device = DeviceModel::ibmqx4();
/// let exec = NoisyExecutor::readout_only(&device);
/// let profile = RbmsTable::exact(&device.readout());
/// let aim = AdaptiveInvertMeasure::new(profile);
///
/// let weak = BitString::ones(5);
/// let circuit = Circuit::basis_state_preparation(weak);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let base = Baseline.execute(&circuit, 8000, &exec, &mut rng);
/// let adaptive = aim.execute(&circuit, 8000, &exec, &mut rng);
/// assert!(adaptive.frequency(&weak) > base.frequency(&weak));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveInvertMeasure {
    rbms: RbmsTable,
    k: usize,
    canary_fraction: f64,
}

/// The intermediate artifacts of one AIM execution, exposed for analysis
/// and the reproduction harness.
#[derive(Debug, Clone)]
pub struct AimReport {
    /// The corrected canary log (SIM-style, global bias averaged out).
    pub canary: Counts,
    /// The predicted outputs, strongest likelihood first.
    pub candidates: Vec<BitString>,
    /// The inversion string used for each candidate.
    pub inversions: Vec<InversionString>,
    /// The merged final log (canary + targeted trials).
    pub merged: Counts,
}

impl AdaptiveInvertMeasure {
    /// Creates AIM with the paper's defaults: k = 4 candidates, 25 % canary
    /// budget.
    pub fn new(rbms: RbmsTable) -> Self {
        AdaptiveInvertMeasure {
            rbms,
            k: 4,
            canary_fraction: 0.25,
        }
    }

    /// Overrides the number of predicted outputs to target.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one candidate");
        self.k = k;
        self
    }

    /// Overrides the canary budget fraction.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `(0, 1)`.
    #[must_use]
    pub fn with_canary_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "canary fraction must be in (0, 1)"
        );
        self.canary_fraction = fraction;
        self
    }

    /// The machine profile in use.
    pub fn rbms(&self) -> &RbmsTable {
        &self.rbms
    }

    /// The candidate count k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The canary budget fraction.
    pub fn canary_fraction(&self) -> f64 {
        self.canary_fraction
    }

    /// The likelihood that state `s` is the correct output given its
    /// observed canary frequency (Equation 1: frequency divided by
    /// measurement strength). The rescaled mass is clamped through the
    /// invariant guard: a NaN or negative strength in a damaged profile
    /// must not poison the candidate ranking (whose comparison sort
    /// requires finite values) — it scores 0 and is counted in the
    /// process-wide `invariant_clamps` ledger instead.
    pub fn likelihood(&self, canary: &Counts, s: BitString) -> f64 {
        crate::validate::clamp_mass(canary.frequency(&s) / self.rbms.strength(s).max(MIN_STRENGTH))
    }

    /// Ranks every observed canary state by likelihood and returns the top
    /// `k` (fewer if fewer states were observed).
    pub fn predict_candidates(&self, canary: &Counts) -> Vec<BitString> {
        let mut scored: Vec<(BitString, f64)> = canary
            .iter()
            .map(|(&s, _)| (s, self.likelihood(canary, s)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("likelihoods are finite")
                .then(a.0.value().cmp(&b.0.value()))
        });
        scored.into_iter().take(self.k).map(|(s, _)| s).collect()
    }

    /// Full execution with intermediate artifacts.
    ///
    /// # Panics
    ///
    /// Panics if the circuit width differs from the profile width or the
    /// executor width.
    pub fn execute_detailed(
        &self,
        circuit: &Circuit,
        shots: u64,
        executor: &dyn Executor,
        rng: &mut dyn RngCore,
    ) -> AimReport {
        let n = circuit.n_qubits();
        assert_eq!(
            n,
            self.rbms.width(),
            "circuit width must match RBMS profile"
        );

        // Phase 1: canary trials under SIM's four strings (§6.2.2).
        let canary_shots = ((shots as f64) * self.canary_fraction).round() as u64;
        let canary_shots = canary_shots.min(shots);
        let sim = StaticInvertMeasure::four_mode(n);
        let canary = sim.execute(circuit, canary_shots, executor, rng);

        // Phase 2: likelihood ranking.
        let candidates = self.predict_candidates(&canary);

        // Phase 3: targeted inversions toward the strongest state.
        let strongest = self.rbms.strongest_state();
        let remaining = shots - canary_shots;
        let mut merged = canary.clone();
        let mut inversions = Vec::new();
        if candidates.is_empty() {
            // Degenerate: no canary data (e.g. zero canary shots). Spend the
            // whole remaining budget in standard mode.
            let log = executor.run(circuit, remaining, rng);
            merged.merge(&log);
        } else {
            let budget = split_shots(remaining, candidates.len());
            // One targeted circuit per candidate, dispatched as a single
            // group run so the executor can sweep them in parallel.
            for &candidate in &candidates {
                inversions.push(InversionString::targeting(candidate, strongest));
            }
            let targeted: Vec<Circuit> = inversions.iter().map(|inv| inv.apply(circuit)).collect();
            let raw_logs = executor.run_groups(&targeted, &budget, rng);
            for (inv, raw) in inversions.iter().zip(&raw_logs) {
                merged.merge(&inv.correct(raw));
            }
        }
        AimReport {
            canary,
            candidates,
            inversions,
            merged,
        }
    }
}

impl MeasurementPolicy for AdaptiveInvertMeasure {
    fn name(&self) -> String {
        "aim".to_string()
    }

    fn execute(
        &self,
        circuit: &Circuit,
        shots: u64,
        executor: &dyn Executor,
        rng: &mut dyn RngCore,
    ) -> Counts {
        self.execute_detailed(circuit, shots, executor, rng).merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Baseline;
    use qnoise::{DeviceModel, IdealExecutor, NoisyExecutor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    fn ibmqx4_aim() -> (NoisyExecutor, AdaptiveInvertMeasure) {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::readout_only(&dev);
        let profile = RbmsTable::exact(&dev.readout());
        (exec, AdaptiveInvertMeasure::new(profile))
    }

    #[test]
    fn defaults_match_paper() {
        let (_, aim) = ibmqx4_aim();
        assert_eq!(aim.k(), 4);
        assert!((aim.canary_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(aim.name(), "aim");
    }

    #[test]
    fn preserves_trial_budget() {
        let (exec, aim) = ibmqx4_aim();
        let c = Circuit::basis_state_preparation(bs("10110"));
        let mut rng = StdRng::seed_from_u64(0);
        for shots in [1u64, 10, 1000, 4097] {
            let log = aim.execute(&c, shots, &exec, &mut rng);
            assert_eq!(log.total(), shots, "budget broken at {shots}");
        }
    }

    #[test]
    fn likelihood_rescales_by_strength() {
        let profile = RbmsTable::from_strengths(1, vec![0.8, 0.2]);
        let aim = AdaptiveInvertMeasure::new(profile);
        let mut canary = Counts::new(1);
        canary.record_n(bs("0"), 50);
        canary.record_n(bs("1"), 50);
        // Equal frequencies, but state 1 is 4x weaker so 4x more likely.
        let l0 = aim.likelihood(&canary, bs("0"));
        let l1 = aim.likelihood(&canary, bs("1"));
        assert!((l1 / l0 - 4.0).abs() < 1e-9);
        let cands = aim.predict_candidates(&canary);
        assert_eq!(cands[0], bs("1"));
    }

    #[test]
    fn candidates_capped_at_k() {
        let profile = RbmsTable::from_strengths(2, vec![1.0; 4]);
        let aim = AdaptiveInvertMeasure::new(profile).with_k(2);
        let mut canary = Counts::new(2);
        for v in 0..4u64 {
            canary.record_n(BitString::from_value(v, 2), v + 1);
        }
        assert_eq!(aim.predict_candidates(&canary).len(), 2);
    }

    #[test]
    fn targeted_inversions_map_candidates_to_strongest() {
        let (exec, aim) = ibmqx4_aim();
        let strongest = aim.rbms().strongest_state();
        let c = Circuit::basis_state_preparation(bs("11011"));
        let mut rng = StdRng::seed_from_u64(4);
        let report = aim.execute_detailed(&c, 8000, &exec, &mut rng);
        assert!(!report.candidates.is_empty());
        for (cand, inv) in report.candidates.iter().zip(&report.inversions) {
            assert_eq!(inv.measured_state(*cand), strongest);
        }
    }

    #[test]
    fn aim_beats_baseline_on_weak_states() {
        let (exec, aim) = ibmqx4_aim();
        let mut rng = StdRng::seed_from_u64(13);
        let shots = 12_000;
        for target in ["11111", "01111", "11110"] {
            let t = bs(target);
            let c = Circuit::basis_state_preparation(t);
            let base = Baseline.execute(&c, shots, &exec, &mut rng);
            let adaptive = aim.execute(&c, shots, &exec, &mut rng);
            assert!(
                adaptive.frequency(&t) > base.frequency(&t) * 1.3,
                "{target}: AIM {} vs baseline {}",
                adaptive.frequency(&t),
                base.frequency(&t)
            );
        }
    }

    #[test]
    fn aim_roughly_matches_baseline_on_strongest_state() {
        // Figure 13: AIM's only loss is on the trivial strongest state,
        // where the baseline is already optimal (in the paper's figure the
        // baseline visibly beats AIM at the all-zeros key). AIM pays its
        // canary trials and the 3 mispredicted targeted groups there, so it
        // keeps roughly 2/3 of the baseline's fidelity.
        let (exec, aim) = ibmqx4_aim();
        let strongest = aim.rbms().strongest_state();
        let mut rng = StdRng::seed_from_u64(14);
        let c = Circuit::basis_state_preparation(strongest);
        let shots = 12_000;
        let base = Baseline.execute(&c, shots, &exec, &mut rng);
        let adaptive = aim.execute(&c, shots, &exec, &mut rng);
        let ratio = adaptive.frequency(&strongest) / base.frequency(&strongest);
        assert!(ratio > 0.55, "AIM/baseline on strongest state = {ratio}");
    }

    #[test]
    fn aim_on_ideal_machine_is_lossless() {
        let profile = RbmsTable::from_strengths(3, vec![1.0; 8]);
        let aim = AdaptiveInvertMeasure::new(profile);
        let exec = IdealExecutor::new(3);
        let c = Circuit::basis_state_preparation(bs("110"));
        let mut rng = StdRng::seed_from_u64(1);
        let log = aim.execute(&c, 1000, &exec, &mut rng);
        assert_eq!(log.get(&bs("110")), 1000);
    }

    #[test]
    fn canary_fraction_validation() {
        let profile = RbmsTable::from_strengths(1, vec![1.0, 1.0]);
        assert!(std::panic::catch_unwind(|| {
            AdaptiveInvertMeasure::new(profile.clone()).with_canary_fraction(0.0)
        })
        .is_err());
        assert!(
            std::panic::catch_unwind(|| { AdaptiveInvertMeasure::new(profile).with_k(0) }).is_err()
        );
    }
}
