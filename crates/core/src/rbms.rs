//! Relative Basis Measurement Strength (RBMS) characterization.
//!
//! AIM needs a per-state measurement-strength profile of the machine
//! (paper §6.2.1 and Appendix A). Three estimators are implemented:
//!
//! * [`RbmsTable::brute_force`] — prepare and measure every basis state;
//!   exact but costs `O(2^n)` circuits;
//! * [`RbmsTable::esct`] — Equal Superposition Characterization Technique:
//!   measure `H⊗n` repeatedly; one circuit, `O(2^n)` trials. The paper
//!   reports ≤ 5 % MSE versus brute force;
//! * [`RbmsTable::awct`] — Approximate Windowed Characterization Technique:
//!   sliding `m`-qubit windows with 2-qubit overlap, combining per-window
//!   superposition estimates. Trials scale as `O(2^m)` instead of `O(2^n)`,
//!   which is what makes 14-qubit characterization practical.
//!
//! ESCT/AWCT estimate strengths from superposition *frequencies*, which
//! double-count the per-qubit bias (a state is depleted by its own errors
//! *and* fed by its neighbours' errors). The estimators apply a first-order
//! square-root correction so their output matches the directly measured
//! RBMS; the uncorrected estimate is available as [`RbmsTable::esct_raw`]
//! for the Appendix-A validation figure.

use qnoise::{Executor, ReadoutModel};
use qsim::{BitString, Circuit, Counts};
use rand::RngCore;

/// A per-basis-state measurement-strength table.
///
/// Strengths are stored on an arbitrary positive scale; use
/// [`RbmsTable::relative`] for the max-normalized view the paper plots.
///
/// # Examples
///
/// ```
/// use invmeas::RbmsTable;
/// use qnoise::DeviceModel;
/// use qsim::BitString;
///
/// let table = RbmsTable::exact(&DeviceModel::ibmqx2().readout());
/// // On ibmqx2 the strongest state is all-zeros, the weakest all-ones.
/// assert_eq!(table.strongest_state(), BitString::zeros(5));
/// assert_eq!(table.weakest_state(), BitString::ones(5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RbmsTable {
    width: usize,
    strengths: Vec<f64>,
    trials_used: u64,
}

impl RbmsTable {
    /// Builds a table from raw per-state strengths (`strengths[i]` belongs
    /// to the basis state with value `i`).
    ///
    /// # Panics
    ///
    /// Panics if the length is not `2^width`, any strength is negative or
    /// non-finite, or all strengths are zero. Fallible callers (loaders,
    /// resumed characterizations) use [`RbmsTable::try_from_strengths`].
    pub fn from_strengths(width: usize, strengths: Vec<f64>) -> Self {
        match Self::try_from_strengths(width, strengths) {
            Ok(table) => table,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`RbmsTable::from_strengths`]: validates that the
    /// vector has `2^width` entries, every strength is finite and
    /// non-negative, and at least one is positive — the invariants
    /// [`RbmsTable::relative`] and AIM's likelihood rescaling divide by.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant; NaN, ±∞, and negative
    /// strengths are rejected here instead of propagating into divisions.
    pub fn try_from_strengths(
        width: usize,
        strengths: Vec<f64>,
    ) -> Result<Self, crate::validate::ValidateError> {
        crate::validate::validate_strengths(width, &strengths)?;
        Ok(RbmsTable {
            width,
            strengths,
            trials_used: 0,
        })
    }

    /// The exact table computed from a readout channel's diagonal — ground
    /// truth for validating the estimators.
    ///
    /// # Panics
    ///
    /// Panics if the channel covers more than 20 qubits.
    pub fn exact(readout: &dyn ReadoutModel) -> Self {
        let n = readout.n_qubits();
        assert!(n <= 20, "exact table limited to 20 qubits");
        let strengths = BitString::all(n)
            .map(|s| readout.success_probability(s))
            .collect();
        RbmsTable::from_strengths(n, strengths)
    }

    /// Brute-force characterization: prepares each of the `2^n` basis
    /// states and measures it `shots_per_state` times (paper §3.1 used 16k
    /// trials per state on the 5-qubit machines).
    ///
    /// Basis-state preparations are X-only circuits, which the execution
    /// engine detects and turns into point-mass distributions without
    /// building any statevector — the sweep costs `O(2^n)` per state
    /// (channel work) instead of `O(n · 4^n)` total simulation work.
    ///
    /// # Panics
    ///
    /// Panics if the executor covers more than 16 qubits (the exponential
    /// sweep is the very cost AWCT exists to avoid) or `shots_per_state`
    /// is 0.
    pub fn brute_force(
        executor: &dyn Executor,
        shots_per_state: u64,
        rng: &mut dyn RngCore,
    ) -> Self {
        let n = executor.n_qubits();
        assert!(n <= 16, "brute force limited to 16 qubits");
        assert!(shots_per_state > 0, "need at least one shot per state");
        // One preparation circuit per basis state, dispatched as a single
        // batch so the executor can sweep them in parallel.
        let circuits: Vec<Circuit> = BitString::all(n)
            .map(Circuit::basis_state_preparation)
            .collect();
        let logs = executor.run_batch(&circuits, shots_per_state, rng);
        let strengths = BitString::all(n)
            .zip(&logs)
            .map(|(s, log)| log.frequency(&s))
            .collect();
        let mut table = RbmsTable::from_strengths(n, strengths);
        table.trials_used = shots_per_state << n;
        table
    }

    /// ESCT: measures the uniform superposition `total_shots` times and
    /// estimates relative strengths from the outcome frequencies with the
    /// first-order square-root bias correction.
    ///
    /// # Panics
    ///
    /// Panics if the executor covers more than 16 qubits or
    /// `total_shots` is 0.
    pub fn esct(executor: &dyn Executor, total_shots: u64, rng: &mut dyn RngCore) -> Self {
        let mut table = Self::esct_raw(executor, total_shots, rng);
        for s in &mut table.strengths {
            *s = s.sqrt();
        }
        table
    }

    /// ESCT without the bias correction: the raw relative outcome
    /// frequencies of the uniform superposition, as the paper plots them in
    /// Figure 4 and Figure 15.
    ///
    /// # Panics
    ///
    /// Panics if the executor covers more than 16 qubits or
    /// `total_shots` is 0.
    pub fn esct_raw(executor: &dyn Executor, total_shots: u64, rng: &mut dyn RngCore) -> Self {
        let n = executor.n_qubits();
        assert!(n <= 16, "ESCT table limited to 16 qubits");
        assert!(total_shots > 0, "need at least one shot");
        let log = executor.run(&Circuit::uniform_superposition(n), total_shots, rng);
        let strengths = BitString::all(n).map(|s| log.frequency(&s)).collect();
        let mut table = RbmsTable::from_strengths(n, strengths);
        table.trials_used = total_shots;
        table
    }

    /// AWCT: sliding-window characterization (Appendix A). Characterizes
    /// `window` qubits at a time with uniform superpositions, consecutive
    /// windows overlapping by `overlap` qubits, and combines the window
    /// estimates multiplicatively with the overlap marginals divided out.
    ///
    /// Total trials are `n_windows · shots_per_window = O(2^m)`-ish rather
    /// than `O(2^n)`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0, `window > n`, `overlap >= window`,
    /// `shots_per_window` is 0, or the register exceeds 20 qubits (the
    /// combined table itself is `2^n` entries).
    pub fn awct(
        executor: &dyn Executor,
        window: usize,
        overlap: usize,
        shots_per_window: u64,
        rng: &mut dyn RngCore,
    ) -> Self {
        let n = executor.n_qubits();
        assert!(n <= 20, "AWCT combined table limited to 20 qubits");
        assert!(window >= 1 && window <= n, "bad window size {window}");
        assert!(overlap < window, "overlap must be smaller than the window");
        assert!(shots_per_window > 0, "need at least one shot per window");

        let starts = awct_starts(n, window, overlap);

        // One superposition circuit per window, swept as a batch; then
        // per-window relative strength estimates (sqrt-corrected).
        let circuits: Vec<Circuit> = starts
            .iter()
            .map(|&lo| awct_window_circuit(n, lo, window))
            .collect();
        let logs = executor.run_batch(&circuits, shots_per_window, rng);
        let trials = shots_per_window * starts.len() as u64;
        let mut window_tables: Vec<Vec<f64>> = Vec::with_capacity(starts.len());
        for (&lo, log) in starts.iter().zip(&logs) {
            // Marginalize onto the window bits.
            let mut marg = Counts::new(window);
            for (s, &cnt) in log.iter() {
                marg.record_n(s.window(lo, window), cnt);
            }
            let freqs: Vec<f64> = BitString::all(window)
                .map(|p| marg.frequency(&p).sqrt())
                .collect();
            window_tables.push(freqs);
        }

        let strengths = awct_combine(n, window, overlap, &starts, &window_tables);
        let mut table = RbmsTable::from_strengths(n, strengths);
        table.trials_used = trials;
        table
    }

    /// The register width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of trials the characterization consumed (0 for exact /
    /// hand-built tables).
    pub fn trials_used(&self) -> u64 {
        self.trials_used
    }

    /// Records the trial count (used when reloading persisted profiles).
    pub fn set_trials_used(&mut self, trials: u64) {
        self.trials_used = trials;
    }

    /// The raw strength of state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s.width() != width`.
    pub fn strength(&self, s: BitString) -> f64 {
        assert_eq!(s.width(), self.width, "bit string width mismatch");
        self.strengths[s.index()]
    }

    /// The raw strengths, indexed by state value.
    pub fn strengths(&self) -> &[f64] {
        &self.strengths
    }

    /// The max-normalized ("relative") strengths — the paper's plotted
    /// quantity.
    pub fn relative(&self) -> Vec<f64> {
        qmetrics::normalize_to_max(&self.strengths)
    }

    /// The state with the highest measurement strength — AIM's inversion
    /// target. Ties break toward the lowest state value.
    pub fn strongest_state(&self) -> BitString {
        let mut best = 0usize;
        for (i, &v) in self.strengths.iter().enumerate() {
            if v > self.strengths[best] {
                best = i;
            }
        }
        BitString::from_value(best as u64, self.width)
    }

    /// The state with the lowest measurement strength.
    pub fn weakest_state(&self) -> BitString {
        let mut worst = 0usize;
        for (i, &v) in self.strengths.iter().enumerate() {
            if v < self.strengths[worst] {
                worst = i;
            }
        }
        BitString::from_value(worst as u64, self.width)
    }

    /// Mean squared error between this table's relative strengths and
    /// another's — the Appendix-A validation statistic.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn mse_vs(&self, other: &RbmsTable) -> f64 {
        assert_eq!(self.width, other.width, "width mismatch");
        qmetrics::mean_squared_error(&self.relative(), &other.relative())
    }

    /// Pearson correlation between relative strength and Hamming weight —
    /// the paper's headline bias statistic (−0.93 on ibmqx2).
    pub fn hamming_correlation(&self) -> f64 {
        qmetrics::hamming_weight_correlation(self.width, &self.relative())
    }
}

/// AWCT window start positions: stride `window - overlap`, clipped so the
/// final window ends exactly at `n`. A pure function of the geometry, so
/// the journaled (unit-at-a-time) characterization and the batched
/// [`RbmsTable::awct`] agree on the decomposition.
pub(crate) fn awct_starts(n: usize, window: usize, overlap: usize) -> Vec<usize> {
    let stride = window - overlap;
    let mut starts = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos + window >= n {
            starts.push(n - window);
            break;
        }
        starts.push(pos);
        pos += stride;
    }
    starts
}

/// The uniform-superposition circuit over one AWCT window.
pub(crate) fn awct_window_circuit(n: usize, lo: usize, window: usize) -> Circuit {
    let mut circuit = Circuit::new(n);
    for q in lo..lo + window {
        circuit.h(q);
    }
    circuit
}

/// Combines per-window sqrt-corrected frequency tables into the full
/// `2^n` strength vector, dividing out the overlap marginals — the pure
/// second half of [`RbmsTable::awct`], shared with the journaled path.
pub(crate) fn awct_combine(
    n: usize,
    window: usize,
    overlap: usize,
    starts: &[usize],
    window_tables: &[Vec<f64>],
) -> Vec<f64> {
    // Overlap marginals for every window after the first: the marginal
    // of the window estimate over its first `overlap` qubits.
    let mut overlap_tables: Vec<Vec<f64>> = Vec::with_capacity(starts.len());
    for (w, table) in window_tables.iter().enumerate() {
        if w == 0 || overlap == 0 {
            overlap_tables.push(Vec::new());
            continue;
        }
        // Sum of squared (i.e. raw) frequencies over the suffix bits,
        // then sqrt again to stay on the corrected scale.
        let mut sums = vec![0.0f64; 1 << overlap];
        for (pat_idx, &val) in table.iter().enumerate() {
            sums[pat_idx & ((1 << overlap) - 1)] += val * val;
        }
        overlap_tables.push(sums.into_iter().map(f64::sqrt).collect());
    }

    // Combine into the full 2^n table.
    let dim = 1usize << n;
    let mut strengths = vec![0.0f64; dim];
    for (idx, out) in strengths.iter_mut().enumerate() {
        let s = BitString::from_value(idx as u64, n);
        let mut val = 1.0f64;
        for (w, &lo) in starts.iter().enumerate() {
            let pat = s.window(lo, window).index();
            val *= window_tables[w][pat];
            if w > 0 && overlap > 0 {
                let ov = s.window(lo, overlap).index();
                let denom = overlap_tables[w][ov];
                if denom > 0.0 {
                    val /= denom;
                }
            }
        }
        *out = val;
    }
    strengths
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnoise::{DeviceModel, NoisyExecutor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn exact_table_matches_channel_diagonal() {
        let readout = DeviceModel::ibmqx4().readout();
        let table = RbmsTable::exact(&readout);
        for s in BitString::all(5) {
            assert_eq!(table.strength(s), readout.success_probability(s));
        }
    }

    #[test]
    fn brute_force_converges_to_exact() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let readout = dev.readout();
        let exact = RbmsTable::exact(&readout);
        let mut r = rng();
        let est = RbmsTable::brute_force(&exec, 4000, &mut r);
        assert_eq!(est.trials_used(), 4000 * 32);
        let mse = est.mse_vs(&exact);
        assert!(mse < 0.002, "brute force MSE = {mse}");
    }

    #[test]
    fn esct_matches_brute_force_within_paper_bound() {
        // Appendix A: ESCT achieves RBMS within 5% MSE of the direct sweep.
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut r = rng();
        let exact = RbmsTable::exact(&dev.readout());
        let esct = RbmsTable::esct(&exec, 400_000, &mut r);
        let mse = esct.mse_vs(&exact);
        assert!(mse < 0.05, "ESCT MSE = {mse}");
        // The corrected estimator is closer than the raw one.
        let mut r = rng();
        let raw = RbmsTable::esct_raw(&exec, 400_000, &mut r);
        assert!(esct.mse_vs(&exact) < raw.mse_vs(&exact));
    }

    #[test]
    fn esct_preserves_strength_ordering() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut r = rng();
        let esct = RbmsTable::esct(&exec, 200_000, &mut r);
        assert_eq!(esct.strongest_state(), BitString::zeros(5));
        assert_eq!(esct.weakest_state(), BitString::ones(5));
    }

    #[test]
    fn awct_approximates_exact_table() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut r = rng();
        let exact = RbmsTable::exact(&dev.readout());
        let awct = RbmsTable::awct(&exec, 3, 2, 150_000, &mut r);
        let mse = awct.mse_vs(&exact);
        assert!(mse < 0.05, "AWCT MSE = {mse}");
    }

    #[test]
    fn awct_trial_cost_scales_with_windows_not_states() {
        let dev = DeviceModel::ibmq_melbourne().subdevice(&[0, 1, 2, 3, 4, 5, 7, 8, 9, 10]);
        let exec = NoisyExecutor::readout_only(&dev);
        let mut r = rng();
        let shots_per_window = 16_000;
        let awct = RbmsTable::awct(&exec, 4, 2, shots_per_window, &mut r);
        // 10 qubits, window 4, stride 2: starts 0,2,4,6 -> 4 windows.
        assert_eq!(awct.trials_used(), 4 * shots_per_window);
        // Far fewer trials than a brute-force sweep at comparable accuracy
        // (1024 states x thousands of shots each).
        assert!(awct.trials_used() < 1024 * 1000);
        // Still tracks the exact table's shape.
        let readout = dev.readout();
        let exact = RbmsTable::exact(&readout);
        let corr = qmetrics::pearson_correlation(&awct.relative(), &exact.relative());
        assert!(corr > 0.9, "AWCT/exact correlation = {corr}");
    }

    #[test]
    fn hamming_correlation_is_strongly_negative_on_ibmqx2() {
        let table = RbmsTable::exact(&DeviceModel::ibmqx2().readout());
        let r = table.hamming_correlation();
        assert!(r < -0.9, "correlation = {r} (paper: -0.93)");
    }

    #[test]
    fn ibmqx4_correlation_is_weaker() {
        let qx2 = RbmsTable::exact(&DeviceModel::ibmqx2().readout());
        let qx4 = RbmsTable::exact(&DeviceModel::ibmqx4().readout());
        assert!(
            qx4.hamming_correlation() > qx2.hamming_correlation(),
            "ibmqx4 ({}) should be less weight-correlated than ibmqx2 ({})",
            qx4.hamming_correlation(),
            qx2.hamming_correlation()
        );
    }

    #[test]
    fn relative_peaks_at_one() {
        let table = RbmsTable::exact(&DeviceModel::ibmqx2().readout());
        let rel = table.relative();
        let max = rel.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "all strengths are zero")]
    fn zero_table_rejected() {
        RbmsTable::from_strengths(2, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "overlap must be smaller")]
    fn awct_bad_overlap_panics() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut r = rng();
        RbmsTable::awct(&exec, 2, 2, 10, &mut r);
    }
}
