//! # invmeas — Invert-and-Measure measurement-error mitigation
//!
//! A from-scratch reproduction of **"Mitigating Measurement Errors in
//! Quantum Computers by Exploiting State-Dependent Bias"**
//! (Tannu & Qureshi, MICRO-52, 2019).
//!
//! Measurement is the most error-prone operation on NISQ machines, and its
//! errors are biased: a qubit holding 1 is misread far more often than a
//! qubit holding 0, so basis states with high Hamming weight are the most
//! vulnerable. Invert-and-Measure exploits the bias instead of suffering
//! it: flip qubits with X gates right before measurement so the physical
//! readout happens in a *strong* state, then flip the measured classical
//! bits back.
//!
//! The crate provides the paper's two policies plus supporting machinery:
//!
//! * [`InversionString`] — the pre-measurement flip pattern and its
//!   post-measurement XOR correction;
//! * [`Baseline`] / [`MeasurementPolicy`] — the shot-budget abstraction;
//! * [`StaticInvertMeasure`] (SIM, §5) — a static set of inversion strings
//!   sharing the budget, averaging out the state dependence with no
//!   knowledge of machine or application; up to 2× PST in the paper;
//! * [`RbmsTable`] (§6.2.1, Appendix A) — machine profiling by brute
//!   force, equal superposition (ESCT), or sliding windows (AWCT);
//! * [`AdaptiveInvertMeasure`] (AIM, §6) — canary trials predict the likely
//!   outputs, which are steered onto the machine's strongest state; up to
//!   3× PST in the paper;
//! * [`ConfusionMatrix`] — the contemporary matrix-inversion mitigation as
//!   a comparison baseline.
//!
//! ## Quick start
//!
//! ```
//! use invmeas::{AdaptiveInvertMeasure, Baseline, MeasurementPolicy, RbmsTable,
//!               StaticInvertMeasure};
//! use qnoise::{DeviceModel, NoisyExecutor};
//! use qsim::{BitString, Circuit};
//! use rand::SeedableRng;
//!
//! // A biased five-qubit machine and a program whose answer is all-ones —
//! // the most vulnerable state.
//! let device = DeviceModel::ibmqx2();
//! let exec = NoisyExecutor::readout_only(&device);
//! let answer = BitString::ones(5);
//! let program = Circuit::basis_state_preparation(answer);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! let baseline = Baseline.execute(&program, 4000, &exec, &mut rng);
//! let sim = StaticInvertMeasure::four_mode(5).execute(&program, 4000, &exec, &mut rng);
//! let aim = AdaptiveInvertMeasure::new(RbmsTable::exact(&device.readout()))
//!     .execute(&program, 4000, &exec, &mut rng);
//!
//! assert!(sim.frequency(&answer) > baseline.frequency(&answer));
//! assert!(aim.frequency(&answer) > sim.frequency(&answer));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aim;
pub mod checksum;
pub mod inversion;
pub mod journal;
pub mod policy;
pub mod profile_io;
pub mod rbms;
pub mod runner;
pub mod sim;
pub mod unfolding;
pub mod validate;

pub use aim::{AdaptiveInvertMeasure, AimReport};
pub use inversion::InversionString;
pub use journal::{
    characterize_journaled, characterize_journaled_with_hook, export_journal, inspect_journal,
    install_journal, CharMethod, CharSpec, JournalError, JournalStats,
};
pub use policy::{Baseline, MeasurementPolicy};
pub use profile_io::{ProfileError, ProfileMeta};
pub use rbms::RbmsTable;
pub use runner::{PolicyChoice, Runner};
pub use sim::StaticInvertMeasure;
pub use unfolding::{ConfusionMatrix, TensorUnfolder};
pub use validate::ValidateError;
