//! High-level convenience API: device + policy + metrics in one object.
//!
//! The lower-level pieces (executors, policies, profiles, metrics) compose
//! explicitly; [`Runner`] bundles the common path — "run this benchmark on
//! this machine under this policy and tell me how reliable it was" — into
//! a fluent builder, including automatic RBMS profiling for AIM.

use crate::aim::AdaptiveInvertMeasure;
use crate::journal::{characterize_journaled, CharSpec, JournalStats};
use crate::policy::{Baseline, MeasurementPolicy};
use crate::rbms::RbmsTable;
use crate::sim::StaticInvertMeasure;
use invmeas_faults::{Fault, FaultInjector, FaultSite, NoFaults};
use qmetrics::{CorrectSet, ReliabilityReport};
use qnoise::{DeviceModel, NoisyExecutor};
use qsim::{Circuit, Counts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

/// Which mitigation policy a [`Runner`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Standard measurement for every trial.
    Baseline,
    /// Static Invert-and-Measure with the paper's four strings.
    Sim,
    /// Adaptive Invert-and-Measure (profiles the machine on first use).
    Aim,
}

/// A configured execution environment for one device.
///
/// # Examples
///
/// ```
/// use invmeas::runner::{PolicyChoice, Runner};
/// use qnoise::DeviceModel;
///
/// let bench = qsim::Circuit::basis_state_preparation("11111".parse()?);
/// let answer: qsim::BitString = "11111".parse()?;
/// let mut runner = Runner::new(DeviceModel::ibmqx4()).with_seed(7);
/// let base = runner.evaluate(PolicyChoice::Baseline, &bench, answer.into(), 4000);
/// let aim = runner.evaluate(PolicyChoice::Aim, &bench, answer.into(), 4000);
/// assert!(aim.pst > base.pst);
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
#[derive(Debug)]
pub struct Runner {
    device: DeviceModel,
    executor: NoisyExecutor,
    rng: StdRng,
    seed: u64,
    profile_shots: u64,
    profile: Option<RbmsTable>,
    faults: Arc<dyn FaultInjector>,
    journal: Option<PathBuf>,
    journal_stats: Option<JournalStats>,
}

impl Runner {
    /// Default trial budget spent on AIM's machine profile (per basis
    /// state for ≤ 5 qubits, per window beyond).
    pub const DEFAULT_PROFILE_SHOTS: u64 = 8_192;

    /// Creates a runner with the device's full noise model and a fixed
    /// default seed (override with [`Runner::with_seed`]).
    pub fn new(device: DeviceModel) -> Self {
        let executor = NoisyExecutor::from_device(&device);
        Runner {
            device,
            executor,
            rng: StdRng::seed_from_u64(0x1e4d),
            seed: 0x1e4d,
            profile_shots: Self::DEFAULT_PROFILE_SHOTS,
            profile: None,
            faults: Arc::new(NoFaults),
            journal: None,
            journal_stats: None,
        }
    }

    /// Reseeds the runner's random stream (and the journaled
    /// characterization job seed, when [`Runner::with_journal`] is set).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self.seed = seed;
        self
    }

    /// Sets the executor's worker-thread count for batched sweeps
    /// (characterization, SIM groups, AIM targeted runs). Results are
    /// bitwise identical for every thread count.
    ///
    /// Worker threads come from the process-global persistent pool
    /// (`qsim::pool`): the first multi-threaded batch parks `threads - 1`
    /// workers and every later batch in the job reuses them, so long
    /// characterization sweeps pay the spawn cost once instead of once
    /// per circuit group.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.executor = self.executor.with_threads(threads);
        self
    }

    /// Installs a fault injector on the runner *and* its executor: the
    /// runner registers one [`FaultSite::Characterize`] arrival per profile
    /// measurement (see [`Runner::try_profile`]) and the executor one
    /// [`FaultSite::Exec`] arrival per batch-level run. Production code
    /// never calls this; the default [`NoFaults`] costs nothing.
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<dyn FaultInjector>) -> Self {
        self.executor = self.executor.with_faults(Arc::clone(&faults));
        self.faults = faults;
        self
    }

    /// Overrides the AIM profiling budget.
    ///
    /// # Panics
    ///
    /// Panics if `shots` is 0.
    #[must_use]
    pub fn with_profile_shots(mut self, shots: u64) -> Self {
        assert!(shots > 0, "profiling needs at least one shot");
        self.profile_shots = shots;
        self.profile = None;
        self
    }

    /// Routes automatic profiling through the journaled, resumable
    /// characterization path ([`characterize_journaled`]), checkpointing
    /// each completed work unit to `path`. A crashed run left an in-flight
    /// journal there; the next [`Runner::try_profile`] with the same seed
    /// and budget resumes it bit-identically. The journal is left in place
    /// after profiling — callers delete it once the profile is persisted.
    ///
    /// Note: the journaled path draws per-unit RNG streams from the job
    /// seed, so its tables differ numerically (not statistically) from the
    /// legacy single-stream path used without a journal.
    #[must_use]
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Stats from the most recent journaled profile measurement: how many
    /// work units the job had, how many checkpoints this run wrote, and
    /// how many it replayed from a resumed journal. `None` until a
    /// journaled measurement happens.
    pub fn last_journal_stats(&self) -> Option<JournalStats> {
        self.journal_stats
    }

    /// Supplies a pre-measured machine profile (e.g. loaded with
    /// [`RbmsTable::load`]) instead of measuring one.
    ///
    /// # Panics
    ///
    /// Panics if the profile width differs from the device.
    #[must_use]
    pub fn with_profile(mut self, profile: RbmsTable) -> Self {
        assert_eq!(
            profile.width(),
            self.device.n_qubits(),
            "profile width must match the device"
        );
        self.profile = Some(profile);
        self
    }

    /// Injects a machine profile after construction — the mutable-reference
    /// counterpart of [`Runner::with_profile`], used by long-lived hosts
    /// (e.g. the mitigation service) that hand one cached [`RbmsTable`] to
    /// many per-request runners.
    ///
    /// # Panics
    ///
    /// Panics if the profile width differs from the device.
    pub fn set_profile(&mut self, profile: RbmsTable) {
        assert_eq!(
            profile.width(),
            self.device.n_qubits(),
            "profile width must match the device"
        );
        self.profile = Some(profile);
    }

    /// Drops any cached or injected profile so the next AIM run re-measures.
    pub fn clear_profile(&mut self) {
        self.profile = None;
    }

    /// The currently held profile, if one has been measured or injected.
    pub fn cached_profile(&self) -> Option<&RbmsTable> {
        self.profile.as_ref()
    }

    /// The device in use.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The machine profile, measuring it on first use (brute force for ≤ 5
    /// qubits, AWCT windows beyond — the paper's §6.2.1 prescription).
    ///
    /// # Panics
    ///
    /// Panics if an installed fault injector fails the measurement — hosts
    /// that script faults must use [`Runner::try_profile`].
    pub fn profile(&mut self) -> &RbmsTable {
        self.try_profile()
            .expect("characterization failed (injected fault on an infallible path)")
    }

    /// Fallible form of [`Runner::profile`]: measures the machine profile
    /// on first use, registering one [`FaultSite::Characterize`] arrival
    /// per actual measurement (cached and injected profiles register
    /// nothing). An injected `Error` is returned to the caller — this is
    /// the hook the mitigation service's retry/breaker layer exercises;
    /// `Latency` stalls the measurement and `Panic` panics.
    ///
    /// # Errors
    ///
    /// Returns the injected failure message. Without a fault injector this
    /// never errors.
    pub fn try_profile(&mut self) -> Result<&RbmsTable, String> {
        if self.profile.is_none() {
            if let Some(f) = self.faults.check(FaultSite::Characterize) {
                f.apply_latency();
                match f {
                    Fault::Error(m) => return Err(m),
                    Fault::Panic(m) => panic!("{m}"),
                    _ => {}
                }
            }
            let table = if self.journal.is_some() {
                let spec = self.char_spec();
                let (table, stats) = characterize_journaled(
                    &self.executor,
                    &spec,
                    self.journal.as_deref(),
                    self.faults.as_ref(),
                )
                .map_err(|e| e.to_string())?;
                self.journal_stats = Some(stats);
                table
            } else if self.device.n_qubits() <= 5 {
                RbmsTable::brute_force(&self.executor, self.profile_shots, &mut self.rng)
            } else {
                RbmsTable::awct(&self.executor, 4, 2, self.profile_shots, &mut self.rng)
            };
            self.profile = Some(table);
        }
        Ok(self.profile.as_ref().expect("just inserted"))
    }

    /// The journaled characterization job this runner's device and budget
    /// imply: brute force for ≤ 5 qubits, AWCT windows beyond — the same
    /// §6.2.1 prescription as the legacy path.
    fn char_spec(&self) -> CharSpec {
        let n = self.device.n_qubits();
        if n <= 5 {
            CharSpec::brute(self.device.name(), n, self.profile_shots, self.seed)
        } else {
            CharSpec::awct(
                self.device.name(),
                n,
                4.min(n),
                2.min(n - 1),
                self.profile_shots,
                self.seed,
            )
        }
    }

    /// Executes `circuit` for `shots` trials under the chosen policy and
    /// returns the output log.
    ///
    /// # Panics
    ///
    /// Panics if the circuit width differs from the device.
    pub fn run(&mut self, policy: PolicyChoice, circuit: &Circuit, shots: u64) -> Counts {
        assert_eq!(
            circuit.n_qubits(),
            self.device.n_qubits(),
            "circuit width must match the device (route it first if needed)"
        );
        match policy {
            PolicyChoice::Baseline => {
                Baseline.execute(circuit, shots, &self.executor, &mut self.rng)
            }
            PolicyChoice::Sim => StaticInvertMeasure::four_mode(circuit.n_qubits()).execute(
                circuit,
                shots,
                &self.executor,
                &mut self.rng,
            ),
            PolicyChoice::Aim => {
                let profile = self.profile().clone();
                AdaptiveInvertMeasure::new(profile).execute(
                    circuit,
                    shots,
                    &self.executor,
                    &mut self.rng,
                )
            }
        }
    }

    /// Runs and scores in one call.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches between circuit, device, and correct set.
    pub fn evaluate(
        &mut self,
        policy: PolicyChoice,
        circuit: &Circuit,
        correct: CorrectSet,
        shots: u64,
    ) -> ReliabilityReport {
        let log = self.run(policy, circuit, shots);
        ReliabilityReport::evaluate(&log, &correct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::BitString;

    #[test]
    fn runner_compares_policies_end_to_end() {
        let answer = BitString::ones(5);
        let circuit = Circuit::basis_state_preparation(answer);
        let mut runner = Runner::new(DeviceModel::ibmqx2()).with_seed(3);
        let shots = 6_000;
        let base = runner.evaluate(PolicyChoice::Baseline, &circuit, answer.into(), shots);
        let sim = runner.evaluate(PolicyChoice::Sim, &circuit, answer.into(), shots);
        let aim = runner.evaluate(PolicyChoice::Aim, &circuit, answer.into(), shots);
        assert!(sim.pst > base.pst);
        assert!(aim.pst > sim.pst);
    }

    #[test]
    fn threaded_runner_matches_serial_bitwise() {
        let answer = BitString::ones(5);
        let circuit = Circuit::basis_state_preparation(answer);
        let run = |threads: usize| {
            let mut runner = Runner::new(DeviceModel::ibmqx4())
                .with_seed(9)
                .with_threads(threads)
                .with_profile_shots(256);
            runner.run(PolicyChoice::Aim, &circuit, 2_000)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn profile_is_measured_once_and_cached() {
        let mut runner = Runner::new(DeviceModel::ibmqx4())
            .with_seed(1)
            .with_profile_shots(512);
        let first = runner.profile().clone();
        let second = runner.profile().clone();
        assert_eq!(first, second);
        assert!(first.trials_used() > 0);
    }

    #[test]
    fn preloaded_profile_is_used_verbatim() {
        let table = RbmsTable::exact(&DeviceModel::ibmqx4().readout());
        let mut runner = Runner::new(DeviceModel::ibmqx4()).with_profile(table.clone());
        assert_eq!(runner.profile(), &table);
    }

    #[test]
    fn injected_profile_replaces_and_clears() {
        let table = RbmsTable::exact(&DeviceModel::ibmqx4().readout());
        let mut runner = Runner::new(DeviceModel::ibmqx4()).with_profile_shots(128);
        assert!(runner.cached_profile().is_none());
        runner.set_profile(table.clone());
        assert_eq!(runner.cached_profile(), Some(&table));
        assert_eq!(runner.profile(), &table); // injected, not measured
        runner.clear_profile();
        assert!(runner.cached_profile().is_none());
        // Next access measures afresh.
        assert!(runner.profile().trials_used() > 0);
    }

    #[test]
    #[should_panic(expected = "profile width must match")]
    fn injected_profile_width_checked() {
        let mut runner = Runner::new(DeviceModel::ibmqx2());
        runner.set_profile(RbmsTable::from_strengths(2, vec![1.0; 4]));
    }

    #[test]
    fn large_device_profiles_with_awct() {
        let dev = DeviceModel::ibmq_melbourne().best_qubits_subdevice(7);
        let mut runner = Runner::new(dev).with_seed(2).with_profile_shots(2_000);
        let profile = runner.profile();
        assert_eq!(profile.width(), 7);
        // AWCT trials: windows * shots, far below brute force's 2^7 states.
        assert!(profile.trials_used() < 2_000 * 16);
    }

    #[test]
    #[should_panic(expected = "circuit width must match")]
    fn width_mismatch_rejected() {
        let mut runner = Runner::new(DeviceModel::ibmqx2());
        let c = Circuit::new(3);
        runner.run(PolicyChoice::Baseline, &c, 10);
    }

    #[test]
    #[should_panic(expected = "profile width must match")]
    fn wrong_profile_rejected() {
        let table = RbmsTable::from_strengths(2, vec![1.0; 4]);
        let _ = Runner::new(DeviceModel::ibmqx2()).with_profile(table);
    }

    #[test]
    fn injected_characterization_fault_is_transient() {
        use invmeas_faults::FaultPlan;

        let plan = Arc::new(FaultPlan::new(5).on_nth(
            FaultSite::Characterize,
            1,
            Fault::Error("injected characterization failure".into()),
        ));
        let mut runner = Runner::new(DeviceModel::ibmqx4())
            .with_seed(2)
            .with_profile_shots(256)
            .with_faults(Arc::clone(&plan) as Arc<dyn FaultInjector>);
        // First measurement hits the scripted fault; nothing is cached.
        let err = runner.try_profile().unwrap_err();
        assert!(err.contains("injected"), "{err}");
        assert!(runner.cached_profile().is_none());
        // The retry (arrival 2, nothing scheduled) succeeds and caches.
        assert!(runner.try_profile().is_ok());
        assert!(runner.cached_profile().is_some());
        // Cached access registers no further Characterize arrivals.
        let arrivals = plan.arrivals(FaultSite::Characterize);
        let _ = runner.try_profile().unwrap();
        assert_eq!(plan.arrivals(FaultSite::Characterize), arrivals);
    }

    #[test]
    fn journaled_runner_resumes_bit_identically_after_crash() {
        use invmeas_faults::FaultPlan;

        let dir =
            std::env::temp_dir().join(format!("invmeas-runner-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ibmqx4.journal");
        std::fs::remove_file(&path).ok();

        let make = |faults: Option<Arc<dyn FaultInjector>>| {
            let mut r = Runner::new(DeviceModel::ibmqx4())
                .with_seed(7)
                .with_profile_shots(256)
                .with_journal(&path);
            if let Some(f) = faults {
                r = r.with_faults(f);
            }
            r
        };

        // Uninterrupted journaled run is the baseline.
        let mut clean = make(None);
        let baseline = clean.profile().clone();
        let stats = clean.last_journal_stats().unwrap();
        assert_eq!(stats.checkpoints_written, stats.total_units);
        std::fs::remove_file(&path).unwrap();

        // Crash mid-run: the scripted panic kills the third checkpoint.
        let plan: Arc<dyn FaultInjector> = Arc::new(FaultPlan::new(1).on_nth(
            FaultSite::JournalWrite,
            3,
            Fault::Panic("worker died".into()),
        ));
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            make(Some(plan)).profile().clone()
        }));
        assert!(died.is_err(), "scripted crash did not fire");

        // A fresh runner resumes the journal and matches the baseline
        // byte-for-byte.
        let mut resumed = make(None);
        assert_eq!(resumed.profile().to_text(), baseline.to_text());
        let stats = resumed.last_journal_stats().unwrap();
        assert_eq!(stats.resumed_units, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn faulted_runner_matches_clean_runner_bitwise() {
        use invmeas_faults::FaultPlan;

        // A plan with only latency faults must not change any sampled data.
        let plan = Arc::new(FaultPlan::new(6).on_nth(FaultSite::Exec, 1, Fault::Latency(1)));
        let answer = BitString::ones(5);
        let circuit = Circuit::basis_state_preparation(answer);
        let run = |faults: Option<Arc<dyn FaultInjector>>| {
            let mut runner = Runner::new(DeviceModel::ibmqx4())
                .with_seed(11)
                .with_profile_shots(256);
            if let Some(f) = faults {
                runner = runner.with_faults(f);
            }
            runner.run(PolicyChoice::Aim, &circuit, 1_000)
        };
        assert_eq!(run(None), run(Some(plan)));
    }
}
