//! Calibration-matrix unfolding — the contemporary post-processing
//! baseline.
//!
//! The error-mitigation techniques the paper cites in related work
//! (Sun & Geller 2019, and the approach later shipped in Qiskit Ignis)
//! measure the full confusion matrix `A` with `A[obs][ideal] =
//! P(obs | ideal)` during calibration and *post-process* the observed
//! distribution by solving `A · p_ideal = p_obs`. This module implements
//! that baseline so the evaluation can compare Invert-and-Measure against
//! it (a comparison the paper leaves qualitative).
//!
//! Unfolding differs from Invert-and-Measure in kind: it edits the
//! *distribution* after the fact (and can produce negative quasi-counts
//! that must be clipped), whereas SIM/AIM change which physical states are
//! measured. Unfolding also costs `O(2^n)` calibration circuits and `O(4^n)`
//! memory, so it stops scaling far earlier than AWCT-profiled AIM.

use qnoise::ReadoutModel;
use qsim::{BitString, Counts, Distribution};

/// A dense readout confusion matrix with solver-based mitigation.
///
/// # Examples
///
/// ```
/// use invmeas::ConfusionMatrix;
/// use qnoise::DeviceModel;
/// use qsim::{BitString, Counts};
///
/// let cm = ConfusionMatrix::from_model(&DeviceModel::ibmqx2().readout());
/// let mut observed = Counts::new(5);
/// observed.record_n(BitString::ones(5), 600);
/// observed.record_n("11101".parse()?, 400);
/// let mitigated = cm.unfold(&observed);
/// // Probabilities remain a valid distribution after clipping.
/// let total: f64 = mitigated.probabilities().iter().sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    width: usize,
    /// Row-major: `a[obs][ideal] = P(obs | ideal)`.
    a: Vec<Vec<f64>>,
}

impl ConfusionMatrix {
    /// Practical register limit: the dense matrix is `4^n` entries.
    pub const MAX_WIDTH: usize = 10;

    /// Builds the exact matrix from a readout model (the idealized
    /// calibration with infinite shots).
    ///
    /// # Panics
    ///
    /// Panics if the model covers more than [`ConfusionMatrix::MAX_WIDTH`]
    /// qubits.
    pub fn from_model(readout: &dyn ReadoutModel) -> Self {
        let n = readout.n_qubits();
        assert!(
            n <= Self::MAX_WIDTH,
            "dense confusion matrix limited to {} qubits",
            Self::MAX_WIDTH
        );
        let dim = 1usize << n;
        let mut a = vec![vec![0.0; dim]; dim];
        for ideal in 0..dim {
            let ideal_s = BitString::from_value(ideal as u64, n);
            for (obs, row) in a.iter_mut().enumerate() {
                row[ideal] = readout.confusion(ideal_s, BitString::from_value(obs as u64, n));
            }
        }
        ConfusionMatrix { width: n, a }
    }

    /// Builds an empirical matrix from per-ideal-state calibration logs:
    /// `logs[ideal]` is the measured log when basis state `ideal` was
    /// prepared.
    ///
    /// # Panics
    ///
    /// Panics if `logs.len() != 2^width`, widths are inconsistent, or any
    /// log is empty.
    pub fn from_calibration_logs(width: usize, logs: &[Counts]) -> Self {
        assert!(
            width <= Self::MAX_WIDTH,
            "dense confusion matrix limited to {} qubits",
            Self::MAX_WIDTH
        );
        let dim = 1usize << width;
        assert_eq!(logs.len(), dim, "need one log per basis state");
        let mut a = vec![vec![0.0; dim]; dim];
        for (ideal, log) in logs.iter().enumerate() {
            assert_eq!(log.width(), width, "log width mismatch");
            assert!(log.total() > 0, "empty calibration log for state {ideal}");
            for (obs, row) in a.iter_mut().enumerate() {
                row[ideal] = log.frequency(&BitString::from_value(obs as u64, width));
            }
        }
        ConfusionMatrix { width, a }
    }

    /// The register width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// `P(observed | ideal)`.
    ///
    /// # Panics
    ///
    /// Panics if either width differs.
    pub fn probability(&self, observed: BitString, ideal: BitString) -> f64 {
        assert_eq!(observed.width(), self.width, "width mismatch");
        assert_eq!(ideal.width(), self.width, "width mismatch");
        self.a[observed.index()][ideal.index()]
    }

    /// Solves `A · p = p_obs` by Gaussian elimination with partial
    /// pivoting, clips negative entries, and renormalizes — the standard
    /// "matrix inversion" readout mitigation.
    ///
    /// # Panics
    ///
    /// Panics if the observed log's width differs, the log is empty, or the
    /// matrix is numerically singular (cannot happen for physical readout
    /// channels with error < 50 % per qubit).
    #[allow(clippy::needless_range_loop)] // Gaussian elimination index notation
    pub fn unfold(&self, observed: &Counts) -> Distribution {
        assert_eq!(observed.width(), self.width, "width mismatch");
        assert!(observed.total() > 0, "cannot unfold an empty log");
        let dim = 1usize << self.width;
        // Augmented system [A | b].
        let mut m: Vec<Vec<f64>> = (0..dim)
            .map(|r| {
                let mut row = self.a[r].clone();
                row.push(observed.frequency(&BitString::from_value(r as u64, self.width)));
                row
            })
            .collect();
        // Forward elimination with partial pivoting.
        for col in 0..dim {
            let pivot = (col..dim)
                .max_by(|&a, &b| m[a][col].abs().partial_cmp(&m[b][col].abs()).unwrap())
                .expect("non-empty pivot range");
            assert!(
                m[pivot][col].abs() > 1e-12,
                "confusion matrix is numerically singular"
            );
            m.swap(col, pivot);
            for row in (col + 1)..dim {
                let f = m[row][col] / m[col][col];
                if f == 0.0 {
                    continue;
                }
                for k in col..=dim {
                    m[row][k] -= f * m[col][k];
                }
            }
        }
        // Back substitution.
        let mut p = vec![0.0f64; dim];
        for col in (0..dim).rev() {
            let mut acc = m[col][dim];
            for k in (col + 1)..dim {
                acc -= m[col][k] * p[k];
            }
            p[col] = acc / m[col][col];
        }
        // Clip + renormalize (solution may be a quasi-distribution).
        let mut total = 0.0;
        for v in &mut p {
            if *v < 0.0 {
                *v = 0.0;
            }
            total += *v;
        }
        assert!(total > 0.0, "unfolded distribution vanished after clipping");
        for v in &mut p {
            *v /= total;
        }
        Distribution::from_probabilities(self.width, p)
    }
}

/// Scalable unfolding for *independent* per-qubit readout error.
///
/// When the channel factors per qubit, so does its inverse: each qubit's
/// 2×2 confusion matrix is inverted analytically and applied to the dense
/// distribution one qubit at a time, costing `O(n · 2^n)` instead of the
/// dense solver's `O(8^n)`. This is the practical form of readout
/// mitigation for larger registers (and exactly what later toolkits
/// shipped); it cannot model the crosstalk terms that make ibmqx4's bias
/// arbitrary, which is where Invert-and-Measure retains an edge.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorUnfolder {
    pairs: Vec<qnoise::FlipPair>,
}

impl TensorUnfolder {
    /// Builds the unfolder from a tensor readout channel.
    ///
    /// # Panics
    ///
    /// Panics if any qubit's total error `p01 + p10` reaches 1 (its
    /// confusion matrix would be singular).
    pub fn from_tensor(readout: &qnoise::TensorReadout) -> Self {
        let pairs = readout.pairs().to_vec();
        for (q, p) in pairs.iter().enumerate() {
            assert!(
                (1.0 - p.p01 - p.p10).abs() > 1e-9,
                "qubit {q} confusion matrix is singular (p01 + p10 = 1)"
            );
        }
        TensorUnfolder { pairs }
    }

    /// The register width.
    pub fn width(&self) -> usize {
        self.pairs.len()
    }

    /// Unfolds an observed log by applying each qubit's inverse confusion
    /// matrix, then clipping negatives and renormalizing.
    ///
    /// # Panics
    ///
    /// Panics if the log width differs, the log is empty, or the register
    /// exceeds 26 qubits (dense vector size).
    pub fn unfold(&self, observed: &Counts) -> Distribution {
        assert_eq!(observed.width(), self.width(), "width mismatch");
        assert!(observed.total() > 0, "cannot unfold an empty log");
        let n = self.width();
        assert!(n <= 26, "dense unfolding limited to 26 qubits");
        let mut p: Vec<f64> = observed.to_distribution().probabilities().to_vec();
        for (q, pair) in self.pairs.iter().enumerate() {
            // Confusion A = [[1-p01, p10], [p01, 1-p10]], inverse:
            // A^{-1} = 1/det [[1-p10, -p10], [-p01, 1-p01]], det = 1-p01-p10.
            let det = 1.0 - pair.p01 - pair.p10;
            let inv = [
                [(1.0 - pair.p10) / det, -pair.p10 / det],
                [-pair.p01 / det, (1.0 - pair.p01) / det],
            ];
            let bit = 1usize << q;
            let mut base = 0usize;
            while base < p.len() {
                for offset in 0..bit {
                    let i0 = base + offset;
                    let i1 = i0 | bit;
                    let p0 = p[i0];
                    let p1 = p[i1];
                    p[i0] = inv[0][0] * p0 + inv[0][1] * p1;
                    p[i1] = inv[1][0] * p0 + inv[1][1] * p1;
                }
                base += bit << 1;
            }
        }
        let mut total = 0.0;
        for v in &mut p {
            if *v < 0.0 {
                *v = 0.0;
            }
            total += *v;
        }
        assert!(total > 0.0, "unfolded distribution vanished after clipping");
        for v in &mut p {
            *v /= total;
        }
        Distribution::from_probabilities(self.width(), p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnoise::{DeviceModel, Executor, NoisyExecutor};
    use qsim::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn columns_are_stochastic() {
        let cm = ConfusionMatrix::from_model(&DeviceModel::ibmqx4().readout());
        let dim = 1usize << cm.width();
        for ideal in 0..dim {
            let total: f64 = (0..dim).map(|obs| cm.a[obs][ideal]).sum();
            assert!((total - 1.0).abs() < 1e-9, "column {ideal} sums to {total}");
        }
    }

    #[test]
    fn unfolding_recovers_exact_channel_output() {
        // Push a point distribution through the channel exactly, then
        // unfold: the original point mass returns.
        let readout = DeviceModel::ibmqx2().readout();
        let cm = ConfusionMatrix::from_model(&readout);
        let truth = bs("11011");
        let corrupted = readout.apply_to_distribution(&Distribution::point(truth));
        // Convert the exact distribution into a large synthetic log.
        let mut log = Counts::new(5);
        for (i, &p) in corrupted.probabilities().iter().enumerate() {
            let n = (p * 1e9).round() as u64;
            if n > 0 {
                log.record_n(BitString::from_value(i as u64, 5), n);
            }
        }
        let unfolded = cm.unfold(&log);
        assert!(
            unfolded.probability_of(truth) > 0.999,
            "recovered mass = {}",
            unfolded.probability_of(truth)
        );
    }

    #[test]
    fn unfolding_sampled_log_improves_pst() {
        let dev = DeviceModel::ibmqx2();
        let exec = NoisyExecutor::readout_only(&dev);
        let cm = ConfusionMatrix::from_model(&dev.readout());
        let target = bs("11111");
        let c = Circuit::basis_state_preparation(target);
        let mut rng = StdRng::seed_from_u64(5);
        let observed = exec.run(&c, 16_000, &mut rng);
        let unfolded = cm.unfold(&observed);
        assert!(
            unfolded.probability_of(target) > observed.frequency(&target) + 0.2,
            "unfolded {} vs observed {}",
            unfolded.probability_of(target),
            observed.frequency(&target)
        );
    }

    #[test]
    fn empirical_calibration_close_to_exact() {
        let dev = DeviceModel::ibmqx4();
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(9);
        let logs: Vec<Counts> = BitString::all(5)
            .map(|s| exec.run(&Circuit::basis_state_preparation(s), 8000, &mut rng))
            .collect();
        let empirical = ConfusionMatrix::from_calibration_logs(5, &logs);
        let exact = ConfusionMatrix::from_model(&dev.readout());
        for ideal in BitString::all(5) {
            for obs in BitString::all(5) {
                let d = (empirical.probability(obs, ideal) - exact.probability(obs, ideal)).abs();
                assert!(d < 0.03, "({obs}|{ideal}) off by {d}");
            }
        }
    }

    #[test]
    fn unfold_preserves_normalization() {
        let cm = ConfusionMatrix::from_model(&DeviceModel::ibmqx4().readout());
        let mut log = Counts::new(5);
        log.record_n(bs("00000"), 1);
        let d = cm.unfold(&log);
        assert!((d.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot unfold an empty log")]
    fn empty_log_rejected() {
        let cm = ConfusionMatrix::from_model(&DeviceModel::ibmqx2().readout());
        cm.unfold(&Counts::new(5));
    }

    #[test]
    fn tensor_unfolder_matches_dense_solver() {
        // On a crosstalk-free device the O(n·2^n) per-qubit inverse must
        // agree with the dense Gaussian solver.
        let dev = DeviceModel::ibmqx2();
        let readout = dev.readout();
        let cm = ConfusionMatrix::from_model(&readout);
        let tu = TensorUnfolder::from_tensor(readout.base());
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(31);
        let c = Circuit::basis_state_preparation(bs("10110"));
        let observed = exec.run(&c, 20_000, &mut rng);
        let dense = cm.unfold(&observed);
        let fast = tu.unfold(&observed);
        for s in BitString::all(5) {
            assert!(
                (dense.probability_of(s) - fast.probability_of(s)).abs() < 1e-9,
                "{s}: dense {} vs tensor {}",
                dense.probability_of(s),
                fast.probability_of(s)
            );
        }
    }

    #[test]
    fn tensor_unfolder_scales_past_dense_limit() {
        // 12 qubits: far beyond ConfusionMatrix::MAX_WIDTH; the tensor
        // unfolder recovers a basis state in milliseconds.
        let dev = DeviceModel::ibmq_melbourne().best_qubits_subdevice(12);
        let readout = dev.readout();
        let tu = TensorUnfolder::from_tensor(readout.base());
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(32);
        let target = BitString::ones(12);
        let c = Circuit::basis_state_preparation(target);
        let observed = exec.run(&c, 30_000, &mut rng);
        let unfolded = tu.unfold(&observed);
        assert!(
            unfolded.probability_of(target) > observed.frequency(&target) + 0.1,
            "unfolded {} vs observed {}",
            unfolded.probability_of(target),
            observed.frequency(&target)
        );
    }

    #[test]
    fn tensor_unfolder_misses_crosstalk() {
        // With ibmqx4's crosstalk active, the tensor inverse under-corrects
        // relative to the dense solver that knows the full channel — the
        // structural gap Invert-and-Measure does not have.
        let dev = DeviceModel::ibmqx4();
        let readout = dev.readout();
        let cm = ConfusionMatrix::from_model(&readout);
        let tu = TensorUnfolder::from_tensor(readout.base());
        let exec = NoisyExecutor::readout_only(&dev);
        let mut rng = StdRng::seed_from_u64(33);
        let target = bs("11111"); // all crosstalk sources active
        let observed = exec.run(&Circuit::basis_state_preparation(target), 40_000, &mut rng);
        let dense = cm.unfold(&observed).probability_of(target);
        let fast = tu.unfold(&observed).probability_of(target);
        assert!(
            dense > fast + 0.02,
            "dense {dense} should beat crosstalk-blind tensor {fast}"
        );
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_qubit_rejected() {
        TensorUnfolder::from_tensor(&qnoise::TensorReadout::uniform(
            2,
            qnoise::FlipPair::new(0.5, 0.5),
        ));
    }
}
