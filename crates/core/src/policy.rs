//! Measurement policies: how a shot budget is spent.
//!
//! The paper compares three ways of executing an application's trials:
//! the **baseline** (all trials in standard mode), **SIM** (trials split
//! across static inversion strings, [`crate::StaticInvertMeasure`]) and
//! **AIM** (profile-guided adaptive strings,
//! [`crate::AdaptiveInvertMeasure`]). A [`MeasurementPolicy`] abstracts over
//! them so benchmarks, metrics, and the reproduction harness treat all
//! three uniformly — with identical total trial counts, as the paper's
//! methodology requires (§4.3).

use qnoise::Executor;
use qsim::{Circuit, Counts};
use rand::RngCore;
use std::fmt;

/// A strategy for spending a fixed shot budget on a circuit.
///
/// Implementations must preserve the trial budget exactly: the returned log
/// always contains `shots` trials.
pub trait MeasurementPolicy: fmt::Debug {
    /// A short display name (`baseline`, `sim-4`, `aim`, …).
    fn name(&self) -> String;

    /// Executes `circuit` for exactly `shots` trials on `executor` and
    /// returns the (post-corrected, merged) output log.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the circuit width differs from the
    /// executor width.
    fn execute(
        &self,
        circuit: &Circuit,
        shots: u64,
        executor: &dyn Executor,
        rng: &mut dyn RngCore,
    ) -> Counts;
}

/// The baseline policy: every trial uses the standard measurement mode.
///
/// # Examples
///
/// ```
/// use invmeas::{Baseline, MeasurementPolicy};
/// use qnoise::IdealExecutor;
/// use qsim::Circuit;
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(2);
/// c.x(0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let log = Baseline.execute(&c, 50, &IdealExecutor::new(2), &mut rng);
/// assert_eq!(log.total(), 50);
/// assert_eq!(log.get(&"01".parse()?), 50);
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Baseline;

impl MeasurementPolicy for Baseline {
    fn name(&self) -> String {
        "baseline".to_string()
    }

    fn execute(
        &self,
        circuit: &Circuit,
        shots: u64,
        executor: &dyn Executor,
        rng: &mut dyn RngCore,
    ) -> Counts {
        executor.run(circuit, shots, rng)
    }
}

/// Splits `total` shots into `parts` groups differing by at most one shot,
/// preserving the total exactly. Shared by SIM and AIM.
///
/// # Panics
///
/// Panics if `parts` is 0.
pub(crate) fn split_shots(total: u64, parts: usize) -> Vec<u64> {
    assert!(parts >= 1, "cannot split into zero groups");
    let parts_u = parts as u64;
    let base = total / parts_u;
    let extra = total % parts_u;
    (0..parts_u).map(|i| base + u64::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnoise::IdealExecutor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn baseline_runs_all_shots_standard() {
        let mut c = Circuit::new(3);
        c.x(1);
        let exec = IdealExecutor::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        let log = Baseline.execute(&c, 128, &exec, &mut rng);
        assert_eq!(log.total(), 128);
        assert_eq!(log.get(&"010".parse().unwrap()), 128);
        assert_eq!(Baseline.name(), "baseline");
    }

    #[test]
    fn split_shots_preserves_total() {
        for total in [0u64, 1, 7, 100, 4096] {
            for parts in [1usize, 2, 3, 4, 7] {
                let split = split_shots(total, parts);
                assert_eq!(split.len(), parts);
                assert_eq!(split.iter().sum::<u64>(), total);
                let max = *split.iter().max().unwrap();
                let min = *split.iter().min().unwrap();
                assert!(max - min <= 1, "uneven split {split:?}");
            }
        }
    }
}
