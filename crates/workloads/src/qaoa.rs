//! The Quantum Approximate Optimization Algorithm for max-cut.
//!
//! QAOA (Farhi et al.) alternates `p` layers of a cost unitary
//! `exp(−iγ_l C)` and a mixer `exp(−iβ_l Σ X_i)` on a uniform
//! superposition; for max-cut the cost unitary is one `Rzz` per graph edge.
//! The measured bit string encodes a graph partition; on an error-free
//! machine the optimal cut has the highest output frequency (§4.1).
//!
//! The paper freezes trained circuits and studies how measurement errors
//! corrupt the output distribution; accordingly this module trains the
//! angles against the *ideal* simulator ([`Qaoa::optimized`]) and exposes
//! the trained circuit for noisy execution.

use qsim::{BitString, Circuit, StateVector};
use std::fmt;

/// An undirected, unweighted graph for max-cut instances.
///
/// # Examples
///
/// ```
/// use qworkloads::Graph;
///
/// // A 4-cycle: the max cut (4 edges) is the alternating partition.
/// let g = Graph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.cut_value("0101".parse().unwrap()), 4);
/// let (best, cuts) = g.max_cut_brute_force();
/// assert_eq!(best, 4);
/// assert!(cuts.contains(&"0101".parse().unwrap()));
/// # Ok::<(), qworkloads::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n_nodes: usize,
    edges: Vec<(usize, usize)>,
}

/// Error constructing a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The node count was zero.
    NoNodes,
    /// An edge referenced a node outside `0..n_nodes`.
    EdgeOutOfRange(usize, usize),
    /// An edge connected a node to itself.
    SelfLoop(usize),
    /// The same edge appeared twice.
    DuplicateEdge(usize, usize),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NoNodes => write!(f, "graph has no nodes"),
            GraphError::EdgeOutOfRange(a, b) => write!(f, "edge ({a}, {b}) out of range"),
            GraphError::SelfLoop(a) => write!(f, "self loop on node {a}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge ({a}, {b})"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// Creates a graph, normalizing each edge to `(min, max)` order.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the node count is zero, an edge is out of
    /// range or a self-loop, or an edge repeats.
    pub fn new(n_nodes: usize, edges: Vec<(usize, usize)>) -> Result<Self, GraphError> {
        if n_nodes == 0 {
            return Err(GraphError::NoNodes);
        }
        let mut normalized: Vec<(usize, usize)> = Vec::with_capacity(edges.len());
        for (a, b) in edges {
            if a >= n_nodes || b >= n_nodes {
                return Err(GraphError::EdgeOutOfRange(a, b));
            }
            if a == b {
                return Err(GraphError::SelfLoop(a));
            }
            let e = (a.min(b), a.max(b));
            if normalized.contains(&e) {
                return Err(GraphError::DuplicateEdge(e.0, e.1));
            }
            normalized.push(e);
        }
        Ok(Graph {
            n_nodes,
            edges: normalized,
        })
    }

    /// The complete bipartite graph between the set bits of `partition` and
    /// the rest. Its unique max cut (up to complement) is `partition`
    /// itself, which makes it the canonical way to pin a benchmark's
    /// correct answer to a chosen bit string (paper Table 2).
    ///
    /// # Panics
    ///
    /// Panics if `partition` is all-zeros or all-ones (no cut exists).
    pub fn complete_bipartite(partition: BitString) -> Graph {
        let n = partition.width();
        let w = partition.hamming_weight();
        assert!(
            w > 0 && (w as usize) < n,
            "partition must be a proper cut, got {partition}"
        );
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if partition.bit(a) != partition.bit(b) {
                    edges.push((a, b));
                }
            }
        }
        Graph { n_nodes: n, edges }
    }

    /// The cycle graph `0-1-…-(n-1)-0`. Its max cut is `n` for even `n`
    /// (the alternating partition) and `n − 1` for odd `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Graph {
        assert!(n >= 3, "a ring needs at least three nodes");
        let edges = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::new(n, edges).expect("ring edges are valid")
    }

    /// The path graph `0-1-…-(n-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn path(n: usize) -> Graph {
        assert!(n >= 2, "a path needs at least two nodes");
        Graph::new(n, (0..n - 1).map(|i| (i, i + 1)).collect()).expect("path edges are valid")
    }

    /// The complete graph on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn complete(n: usize) -> Graph {
        assert!(n >= 2, "a complete graph needs at least two nodes");
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Graph::new(n, edges).expect("complete edges are valid")
    }

    /// A deterministic Erdős–Rényi-style random graph: each possible edge
    /// is included with probability `density`, driven by a seeded internal
    /// generator (SplitMix64) so instances are reproducible without an RNG
    /// dependency.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `density` is outside `[0, 1]`.
    pub fn random(n: usize, density: f64, seed: u64) -> Graph {
        assert!(n >= 2, "a random graph needs at least two nodes");
        assert!((0.0..=1.0).contains(&density), "density out of range");
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let u = next() as f64 / u64::MAX as f64;
                if u < density {
                    edges.push((a, b));
                }
            }
        }
        Graph::new(n, edges).expect("random edges are valid")
    }

    /// The number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The edges in normalized order.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// The number of edges crossing the cut `partition`.
    ///
    /// # Panics
    ///
    /// Panics if `partition.width() != n_nodes`.
    pub fn cut_value(&self, partition: BitString) -> usize {
        assert_eq!(partition.width(), self.n_nodes, "partition width mismatch");
        self.edges
            .iter()
            .filter(|&&(a, b)| partition.bit(a) != partition.bit(b))
            .count()
    }

    /// Brute-force max cut: the optimal value and every partition achieving
    /// it (complement pairs both included).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 24 nodes.
    pub fn max_cut_brute_force(&self) -> (usize, Vec<BitString>) {
        assert!(self.n_nodes <= 24, "brute force limited to 24 nodes");
        let mut best = 0;
        let mut cuts = Vec::new();
        for s in BitString::all(self.n_nodes) {
            let v = self.cut_value(s);
            if v > best {
                best = v;
                cuts.clear();
            }
            if v == best {
                cuts.push(s);
            }
        }
        (best, cuts)
    }
}

/// A trained QAOA max-cut instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Qaoa {
    graph: Graph,
    gammas: Vec<f64>,
    betas: Vec<f64>,
}

impl Qaoa {
    /// Creates an instance with explicit angles (one `(γ, β)` pair per
    /// layer).
    ///
    /// # Panics
    ///
    /// Panics if the angle vectors are empty or have different lengths.
    pub fn new(graph: Graph, gammas: Vec<f64>, betas: Vec<f64>) -> Self {
        assert!(!gammas.is_empty(), "need at least one layer");
        assert_eq!(gammas.len(), betas.len(), "angle vectors must match");
        Qaoa {
            graph,
            gammas,
            betas,
        }
    }

    /// Trains a `p`-layer instance against the ideal simulator with a
    /// coarse grid followed by coordinate-descent refinement, maximizing the
    /// expected cut value.
    ///
    /// Deterministic: no randomness is used, so the trained circuit is
    /// reproducible across runs.
    ///
    /// # Panics
    ///
    /// Panics if `p` is 0 or the graph exceeds the simulator's size limit.
    pub fn optimized(graph: Graph, p: usize) -> Self {
        Qaoa::optimized_by(graph, p, |qaoa| qaoa.expected_cut_value())
    }

    /// Trains against a caller-supplied objective — the form real
    /// experiments take, where the variational loop evaluates the cost on
    /// *hardware* (shots under noise) rather than on an ideal simulator.
    /// The optimizer itself is the same deterministic grid + coordinate
    /// descent as [`Qaoa::optimized`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is 0.
    ///
    /// # Examples
    ///
    /// Train against a shot-based objective (here the exact expectation for
    /// brevity; a hardware loop would estimate it from sampled counts):
    ///
    /// ```
    /// use qworkloads::{Graph, Qaoa};
    ///
    /// let g = Graph::ring(4);
    /// let trained = Qaoa::optimized_by(g, 1, |q| q.expected_cut_value());
    /// assert!(trained.expected_cut_value() > 2.0); // above the |E|/2 floor
    /// ```
    pub fn optimized_by<F>(graph: Graph, p: usize, mut objective: F) -> Self
    where
        F: FnMut(&Qaoa) -> f64,
    {
        assert!(p >= 1, "need at least one layer");
        let mut qaoa = Qaoa::new(graph, vec![0.4; p], vec![0.4; p]);
        // Coarse per-coordinate grid, then two refinement sweeps.
        let coarse: Vec<f64> = (0..24)
            .map(|k| k as f64 * std::f64::consts::PI / 24.0)
            .collect();
        for sweep in 0..3 {
            let step = match sweep {
                0 => None, // coarse grid
                1 => Some(0.08),
                _ => Some(0.02),
            };
            for layer in 0..p {
                for angle_kind in 0..2 {
                    let current = if angle_kind == 0 {
                        qaoa.gammas[layer]
                    } else {
                        qaoa.betas[layer]
                    };
                    let candidates: Vec<f64> = match step {
                        None => coarse.clone(),
                        Some(d) => (-4..=4).map(|k| current + k as f64 * d).collect(),
                    };
                    let mut best_angle = current;
                    let mut best_val = f64::NEG_INFINITY;
                    for cand in candidates {
                        if angle_kind == 0 {
                            qaoa.gammas[layer] = cand;
                        } else {
                            qaoa.betas[layer] = cand;
                        }
                        let v = objective(&qaoa);
                        if v > best_val {
                            best_val = v;
                            best_angle = cand;
                        }
                    }
                    if angle_kind == 0 {
                        qaoa.gammas[layer] = best_angle;
                    } else {
                        qaoa.betas[layer] = best_angle;
                    }
                }
            }
        }
        qaoa
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The number of layers `p`.
    pub fn p(&self) -> usize {
        self.gammas.len()
    }

    /// The cost-layer angles.
    pub fn gammas(&self) -> &[f64] {
        &self.gammas
    }

    /// The mixer-layer angles.
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// The QAOA circuit: `H⊗n`, then per layer one `Rzz(γ)` per edge and
    /// `Rx(2β)` on every qubit.
    pub fn circuit(&self) -> Circuit {
        let n = self.graph.n_nodes();
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for (g, b) in self.gammas.iter().zip(&self.betas) {
            for &(a, bq) in self.graph.edges() {
                c.rzz(a, bq, *g);
            }
            for q in 0..n {
                c.rx(q, 2.0 * b);
            }
        }
        c
    }

    /// The ideal output distribution's expected cut value `⟨C⟩`.
    pub fn expected_cut_value(&self) -> f64 {
        let psi = StateVector::from_circuit(&self.circuit());
        psi.probabilities()
            .iter()
            .enumerate()
            .map(|(i, &prob)| {
                prob * self
                    .graph
                    .cut_value(BitString::from_value(i as u64, self.graph.n_nodes()))
                    as f64
            })
            .sum()
    }

    /// The ideal probability of measuring an optimal cut (either
    /// orientation).
    pub fn ideal_success_probability(&self) -> f64 {
        let (_, cuts) = self.graph.max_cut_brute_force();
        let psi = StateVector::from_circuit(&self.circuit());
        cuts.iter().map(|&s| psi.probability_of(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn graph_validation() {
        assert_eq!(Graph::new(0, vec![]), Err(GraphError::NoNodes));
        assert_eq!(
            Graph::new(2, vec![(0, 2)]),
            Err(GraphError::EdgeOutOfRange(0, 2))
        );
        assert_eq!(Graph::new(2, vec![(1, 1)]), Err(GraphError::SelfLoop(1)));
        assert_eq!(
            Graph::new(3, vec![(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge(0, 1))
        );
        let msg = GraphError::DuplicateEdge(0, 1).to_string();
        assert!(msg.contains("duplicate"));
    }

    #[test]
    fn cut_value_counts_crossing_edges() {
        let g = Graph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.cut_value(bs("0101")), 4);
        assert_eq!(g.cut_value(bs("0011")), 2);
        assert_eq!(g.cut_value(bs("0000")), 0);
    }

    #[test]
    fn complete_bipartite_has_unique_max_cut() {
        for target in ["010000", "010100", "101001", "101011", "110110"] {
            let t = bs(target);
            let g = Graph::complete_bipartite(t);
            let (best, cuts) = g.max_cut_brute_force();
            assert_eq!(best, g.edges().len(), "all edges should cross for {target}");
            assert_eq!(
                cuts.len(),
                2,
                "max cut of complete bipartite should be unique up to complement"
            );
            assert!(cuts.contains(&t));
            assert!(cuts.contains(&t.inverted()));
        }
    }

    #[test]
    fn max_cut_brute_force_counts_complements() {
        let g = Graph::new(2, vec![(0, 1)]).unwrap();
        let (best, cuts) = g.max_cut_brute_force();
        assert_eq!(best, 1);
        assert_eq!(cuts, vec![bs("01"), bs("10")]);
    }

    #[test]
    fn ring_max_cut() {
        let (best_even, cuts) = Graph::ring(6).max_cut_brute_force();
        assert_eq!(best_even, 6);
        assert!(cuts.contains(&bs("010101")));
        let (best_odd, _) = Graph::ring(5).max_cut_brute_force();
        assert_eq!(best_odd, 4);
    }

    #[test]
    fn path_and_complete_structure() {
        assert_eq!(Graph::path(5).edges().len(), 4);
        assert_eq!(Graph::complete(5).edges().len(), 10);
        // Complete graph max cut: floor(n/2) * ceil(n/2).
        let (best, _) = Graph::complete(5).max_cut_brute_force();
        assert_eq!(best, 6);
    }

    #[test]
    fn random_graph_is_deterministic_and_density_scaled() {
        let a = Graph::random(8, 0.5, 42);
        let b = Graph::random(8, 0.5, 42);
        assert_eq!(a, b);
        let c = Graph::random(8, 0.5, 43);
        assert_ne!(a, c);
        assert_eq!(Graph::random(8, 0.0, 1).edges().len(), 0);
        assert_eq!(Graph::random(8, 1.0, 1).edges().len(), 28);
        // Moderate density lands in a plausible band.
        let mid = Graph::random(10, 0.4, 7).edges().len();
        assert!((8..=28).contains(&mid), "got {mid} edges");
    }

    #[test]
    fn qaoa_runs_on_random_graph() {
        let g = Graph::random(5, 0.6, 11);
        let (best, _) = g.max_cut_brute_force();
        assert!(best > 0);
        let n_edges = g.edges().len() as f64;
        let qaoa = Qaoa::optimized(g, 1);
        // The optimizer maximizes the expected cut, and (γ, β) = (0, 0) is
        // the uniform superposition whose expectation is |E|/2 — so the
        // trained value can never fall below it.
        let trained = qaoa.expected_cut_value();
        assert!(
            trained >= n_edges / 2.0 - 1e-9,
            "trained {trained} below uniform baseline {}",
            n_edges / 2.0
        );
        // And must make real progress toward the optimum on this instance.
        assert!(
            trained > n_edges / 2.0 + 0.2,
            "no training progress: {trained}"
        );
    }

    #[test]
    fn qaoa_p1_beats_random_guessing() {
        let g = Graph::complete_bipartite(bs("0101"));
        let qaoa = Qaoa::optimized(g, 1);
        // Random guessing over 16 states finds one of the 2 optima with
        // probability 1/8.
        let p = qaoa.ideal_success_probability();
        assert!(p > 0.3, "ideal success probability = {p}");
    }

    #[test]
    fn qaoa_p2_improves_on_p1() {
        let g = Graph::complete_bipartite(bs("101011"));
        let p1 = Qaoa::optimized(g.clone(), 1).expected_cut_value();
        let p2 = Qaoa::optimized(g, 2).expected_cut_value();
        assert!(
            p2 >= p1 - 1e-9,
            "p=2 should not be worse than p=1: {p2} vs {p1}"
        );
    }

    #[test]
    fn qaoa_optimal_cut_is_the_mode() {
        // The trained circuit's most likely output must be the optimal cut
        // (or its complement) — the premise of the paper's QAOA metrics.
        let target = bs("0111");
        let g = Graph::complete_bipartite(target);
        let qaoa = Qaoa::optimized(g, 2);
        let psi = StateVector::from_circuit(&qaoa.circuit());
        let probs = psi.probabilities();
        let mode = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| BitString::from_value(i as u64, 4))
            .unwrap();
        assert!(
            mode == target || mode == target.inverted(),
            "mode {mode} is not the optimal cut"
        );
    }

    #[test]
    fn circuit_structure() {
        let g = Graph::new(3, vec![(0, 1), (1, 2)]).unwrap();
        let qaoa = Qaoa::new(g, vec![0.5, 0.6], vec![0.1, 0.2]);
        let c = qaoa.circuit();
        // 3 H + per layer (2 Rzz + 3 Rx) * 2 layers.
        assert_eq!(c.len(), 3 + 2 * (2 + 3));
        assert_eq!(c.two_qubit_gate_count(), 4);
    }

    #[test]
    fn optimizer_is_deterministic() {
        let g = Graph::complete_bipartite(bs("0101"));
        let a = Qaoa::optimized(g.clone(), 1);
        let b = Qaoa::optimized(g, 1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proper cut")]
    fn bipartite_rejects_trivial_partition() {
        Graph::complete_bipartite(bs("0000"));
    }
}
