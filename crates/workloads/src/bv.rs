//! The Bernstein-Vazirani kernel.
//!
//! BV hides an `n`-bit secret key `s` inside an oracle computing
//! `f(x) = s·x (mod 2)` and recovers the whole key in a single query. On an
//! ideal machine the output equals the key with probability 1, which makes
//! BV the paper's preferred probe of machine reliability: any deviation of
//! PST from 1 is pure error (§4.1).
//!
//! Two oracle constructions are provided:
//!
//! * [`BernsteinVazirani::with_ancilla`] — the textbook form with a `|−⟩`
//!   ancilla and one CNOT per set key bit. This is what runs on hardware and
//!   is the form the paper's benchmarks use (bv-4 outputs a 5-bit string:
//!   4 key bits plus the ancilla, §6.1).
//! * [`BernsteinVazirani::phase_oracle`] — the ancilla-free equivalent where
//!   the oracle is a layer of Z gates. The output register is exactly the
//!   key, which is convenient for the paper's 32-key sweeps (Figures 11(b)
//!   and 13) where the x-axis enumerates all 5-bit states.

use qsim::{BitString, Circuit};

/// A Bernstein-Vazirani instance.
///
/// # Examples
///
/// ```
/// use qworkloads::BernsteinVazirani;
/// use qsim::StateVector;
///
/// let bv = BernsteinVazirani::phase_oracle("0111".parse()?);
/// let psi = StateVector::from_circuit(bv.circuit());
/// // Ideal machine: the key is recovered with certainty.
/// assert!((psi.probability_of(bv.expected_output()) - 1.0).abs() < 1e-9);
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BernsteinVazirani {
    secret: BitString,
    circuit: Circuit,
    expected: BitString,
    uses_ancilla: bool,
}

impl BernsteinVazirani {
    /// Builds the hardware-style instance: `secret.width() + 1` qubits, the
    /// ancilla on the highest index, and one CNOT per set key bit.
    ///
    /// The expected output is the key with the ancilla bit reading 1 (the
    /// ancilla is returned to `|1⟩` by the final Hadamard).
    pub fn with_ancilla(secret: BitString) -> Self {
        let n = secret.width();
        let anc = n;
        let mut c = Circuit::new(n + 1);
        // Ancilla to |−⟩.
        c.x(anc).h(anc);
        for q in 0..n {
            c.h(q);
        }
        // Oracle: f(x) = s·x via phase kickback.
        for q in secret.iter_ones() {
            c.cx(q, anc);
        }
        for q in 0..n {
            c.h(q);
        }
        // Return the ancilla to the computational basis (|−⟩ -> |1⟩).
        c.h(anc);
        let expected = secret.concat(&BitString::ones(1));
        BernsteinVazirani {
            secret,
            circuit: c,
            expected,
            uses_ancilla: true,
        }
    }

    /// Builds the ancilla-free instance: `secret.width()` qubits, the
    /// oracle a layer of Z gates on the set key bits. The expected output
    /// is exactly the key.
    pub fn phase_oracle(secret: BitString) -> Self {
        let n = secret.width();
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for q in secret.iter_ones() {
            c.z(q);
        }
        for q in 0..n {
            c.h(q);
        }
        BernsteinVazirani {
            secret,
            circuit: c,
            expected: secret,
            uses_ancilla: false,
        }
    }

    /// The hidden key.
    pub fn secret(&self) -> BitString {
        self.secret
    }

    /// The kernel circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The full-register output an error-free machine produces with
    /// probability 1.
    pub fn expected_output(&self) -> BitString {
        self.expected
    }

    /// Whether this instance carries an ancilla qubit.
    pub fn uses_ancilla(&self) -> bool {
        self.uses_ancilla
    }

    /// The register width of the measured output.
    pub fn output_width(&self) -> usize {
        self.circuit.n_qubits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::StateVector;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn phase_oracle_recovers_every_4bit_key() {
        for v in 0..16u64 {
            let key = BitString::from_value(v, 4);
            let bv = BernsteinVazirani::phase_oracle(key);
            let psi = StateVector::from_circuit(bv.circuit());
            assert!(
                (psi.probability_of(key) - 1.0).abs() < 1e-9,
                "key {key} not recovered"
            );
        }
    }

    #[test]
    fn ancilla_oracle_recovers_every_3bit_key() {
        for v in 0..8u64 {
            let key = BitString::from_value(v, 3);
            let bv = BernsteinVazirani::with_ancilla(key);
            assert_eq!(bv.output_width(), 4);
            let psi = StateVector::from_circuit(bv.circuit());
            let expected = bv.expected_output();
            assert_eq!(expected.window(0, 3), key);
            assert!(expected.bit(3), "ancilla should read 1");
            assert!(
                (psi.probability_of(expected) - 1.0).abs() < 1e-9,
                "key {key} not recovered"
            );
        }
    }

    #[test]
    fn gate_counts_scale_with_key_weight() {
        let light = BernsteinVazirani::with_ancilla(bs("0001"));
        let heavy = BernsteinVazirani::with_ancilla(bs("1111"));
        assert_eq!(light.circuit().two_qubit_gate_count(), 1);
        assert_eq!(heavy.circuit().two_qubit_gate_count(), 4);
        // Table 3: gate count scales linearly with problem size.
        let bv6 = BernsteinVazirani::with_ancilla(bs("011111"));
        assert_eq!(bv6.circuit().two_qubit_gate_count(), 5);
    }

    #[test]
    fn phase_oracle_has_no_two_qubit_gates() {
        let bv = BernsteinVazirani::phase_oracle(bs("10110"));
        assert_eq!(bv.circuit().two_qubit_gate_count(), 0);
    }

    #[test]
    fn zero_key_is_trivial() {
        let bv = BernsteinVazirani::phase_oracle(bs("0000"));
        let psi = StateVector::from_circuit(bv.circuit());
        assert!((psi.probability_of(bs("0000")) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_benchmark_keys() {
        // Table 3 instances.
        for (key, width) in [("0111", 4), ("1111", 4), ("011111", 6), ("0111111", 7)] {
            let bv = BernsteinVazirani::with_ancilla(bs(key));
            assert_eq!(bv.secret().width(), width);
            assert_eq!(bv.output_width(), width + 1);
        }
    }
}
