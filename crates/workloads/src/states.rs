//! State-preparation kernels used by the characterization experiments.
//!
//! * [`ghz_circuit`] — the maximally entangled GHZ state whose skewed
//!   measurement statistics demonstrate that the bias extends to
//!   superposition and entanglement (paper §3.2, Figure 6);
//! * [`w_state_circuit`] — a W state (single excitation spread over all
//!   qubits), used by the extended tests as a fixed-Hamming-weight
//!   superposition probe;
//! * basis-state and uniform-superposition preparation re-exported from
//!   [`qsim::Circuit`].

use qsim::{BitString, Circuit};

/// The GHZ-`n` preparation: `H` on qubit 0 followed by a CNOT chain. The
/// ideal output is `|0…0⟩` and `|1…1⟩` with probability ½ each.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use qworkloads::ghz_circuit;
/// use qsim::{BitString, StateVector};
///
/// let psi = StateVector::from_circuit(&ghz_circuit(5));
/// assert!((psi.probability_of(BitString::zeros(5)) - 0.5).abs() < 1e-9);
/// assert!((psi.probability_of(BitString::ones(5)) - 0.5).abs() < 1e-9);
/// ```
pub fn ghz_circuit(n: usize) -> Circuit {
    assert!(n >= 2, "GHZ needs at least two qubits");
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

/// A W-state preparation over `n` qubits: the uniform superposition of all
/// weight-1 basis states, built from cascaded controlled rotations.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn w_state_circuit(n: usize) -> Circuit {
    assert!(n >= 2, "W state needs at least two qubits");
    let mut c = Circuit::new(n);
    // Start with the excitation on qubit 0, then distribute it: at step k
    // rotate a share of the amplitude from qubit k onto qubit k+1.
    c.x(0);
    for k in 0..n - 1 {
        let remaining = (n - k) as f64;
        // Rotate so that qubit k keeps amplitude sqrt(1/remaining).
        let theta = 2.0 * (1.0 / remaining.sqrt()).acos();
        // Controlled-Ry(theta) decomposed as Ry(theta/2) CX Ry(-theta/2) CX.
        c.ry(k + 1, theta / 2.0);
        c.cx(k, k + 1);
        c.ry(k + 1, -theta / 2.0);
        c.cx(k, k + 1);
        // Move the "excitation marker": if qubit k+1 took the amplitude,
        // clear qubit k.
        c.cx(k + 1, k);
    }
    c
}

/// The preparation circuit for the computational basis state `s` (X gates
/// on set bits). Re-exported from [`qsim::Circuit::basis_state_preparation`]
/// for discoverability alongside the other kernels.
pub fn basis_state_circuit(s: BitString) -> Circuit {
    Circuit::basis_state_preparation(s)
}

/// `H` on every qubit: the equal superposition used by the paper's ESCT
/// characterization (Appendix A). Re-exported from
/// [`qsim::Circuit::uniform_superposition`].
pub fn uniform_superposition_circuit(n: usize) -> Circuit {
    Circuit::uniform_superposition(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::StateVector;

    #[test]
    fn ghz_is_equal_cat_state() {
        for n in 2..=8 {
            let psi = StateVector::from_circuit(&ghz_circuit(n));
            assert!((psi.probability_of(BitString::zeros(n)) - 0.5).abs() < 1e-9);
            assert!((psi.probability_of(BitString::ones(n)) - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn ghz_gate_budget_is_linear() {
        let c = ghz_circuit(6);
        assert_eq!(c.two_qubit_gate_count(), 5);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn w_state_is_uniform_over_weight_one() {
        for n in 2..=6 {
            let psi = StateVector::from_circuit(&w_state_circuit(n));
            let probs = psi.probabilities();
            let expect = 1.0 / n as f64;
            for (i, &p) in probs.iter().enumerate() {
                let w = (i as u64).count_ones();
                if w == 1 {
                    assert!(
                        (p - expect).abs() < 1e-9,
                        "n={n} state {i:b}: {p} vs {expect}"
                    );
                } else {
                    assert!(p < 1e-9, "n={n} state {i:b} should be empty, got {p}");
                }
            }
        }
    }

    #[test]
    fn basis_circuit_prepares_state() {
        let s: BitString = "10110".parse().unwrap();
        let psi = StateVector::from_circuit(&basis_state_circuit(s));
        assert!((psi.probability_of(s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_superposition_is_flat() {
        let psi = StateVector::from_circuit(&uniform_superposition_circuit(4));
        for &p in psi.probabilities().iter() {
            assert!((p - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn ghz_rejects_single_qubit() {
        ghz_circuit(1);
    }
}
