//! The paper's benchmark suite (Tables 2 and 3).
//!
//! A [`Benchmark`] bundles a kernel circuit with its correct-answer set so
//! measurement policies and metrics can be applied uniformly. The suite
//! constructors reproduce the exact instances the paper evaluates:
//!
//! * **Table 3** — bv-4A/4B and qaoa-4A/4B for the five-qubit machines,
//!   bv-6/7 and qaoa-6/7 for ibmq-melbourne;
//! * **Table 2** — the five 6-node max-cut graphs (A–E) whose optimal cuts
//!   have increasing Hamming weight.
//!
//! One deviation from the paper is documented in DESIGN.md: the paper used
//! five graphs with identical gate counts; we pin each graph's optimal cut
//! with a complete bipartite construction, whose edge count varies with the
//! cut's weight (5–9 edges). Per-benchmark policy comparisons are unaffected
//! because baseline and mitigated runs always share the same circuit.

use crate::bv::BernsteinVazirani;
use crate::qaoa::{Graph, Qaoa};
use qmetrics::CorrectSet;
use qsim::{BitString, Circuit};

/// The kind of kernel behind a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkKind {
    /// Bernstein-Vazirani (single correct output).
    BernsteinVazirani,
    /// QAOA max-cut (a cut and its complement are both correct).
    QaoaMaxCut,
}

/// A runnable benchmark instance: circuit plus correct-answer set.
///
/// # Examples
///
/// ```
/// use qworkloads::Benchmark;
///
/// let b = Benchmark::bv("bv-4A", "0111".parse()?);
/// assert_eq!(b.circuit().n_qubits(), 5); // 4 key bits + ancilla
/// assert_eq!(b.correct().outputs().len(), 1);
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    name: String,
    kind: BenchmarkKind,
    circuit: Circuit,
    correct: CorrectSet,
}

impl Benchmark {
    /// A Bernstein-Vazirani benchmark with the hardware-style (ancilla)
    /// oracle. The correct output is the key with the ancilla bit set.
    pub fn bv(name: impl Into<String>, secret: BitString) -> Self {
        let bv = BernsteinVazirani::with_ancilla(secret);
        Benchmark {
            name: name.into(),
            kind: BenchmarkKind::BernsteinVazirani,
            correct: CorrectSet::single(bv.expected_output()),
            circuit: bv.circuit().clone(),
        }
    }

    /// A Bernstein-Vazirani benchmark with the ancilla-free phase oracle
    /// (used by the all-keys sweeps of Figures 11(b) and 13, where the
    /// output register is exactly the key).
    pub fn bv_phase(name: impl Into<String>, secret: BitString) -> Self {
        let bv = BernsteinVazirani::phase_oracle(secret);
        Benchmark {
            name: name.into(),
            kind: BenchmarkKind::BernsteinVazirani,
            correct: CorrectSet::single(bv.expected_output()),
            circuit: bv.circuit().clone(),
        }
    }

    /// A QAOA max-cut benchmark on the complete bipartite graph pinned to
    /// `target_cut`, trained to `p` layers on the ideal simulator. Both the
    /// cut and its complement are correct.
    ///
    /// # Panics
    ///
    /// Panics if `target_cut` is all-zeros or all-ones.
    pub fn qaoa(name: impl Into<String>, target_cut: BitString, p: usize) -> Self {
        let graph = Graph::complete_bipartite(target_cut);
        let qaoa = Qaoa::optimized(graph, p);
        Benchmark {
            name: name.into(),
            kind: BenchmarkKind::QaoaMaxCut,
            circuit: qaoa.circuit(),
            correct: CorrectSet::with_complement(target_cut),
        }
    }

    /// A QAOA benchmark whose expected output is shifted to `target_cut` by
    /// appending X gates, while the underlying trained circuit is built for
    /// `base_cut`'s graph.
    ///
    /// The paper's Table 2 requires five instances with *identical* gate
    /// structure whose correct outputs have different Hamming weights, so
    /// that reliability differences are attributable to measurement bias
    /// alone. Five distinct graphs cannot satisfy this exactly; XOR-shifting
    /// one instance can: the appended X layer relabels every output by
    /// `base_cut ^ target_cut`, moving the peak to `target_cut` while the
    /// cost/mixer layers stay bit-identical (the X gates add ≤ n
    /// single-qubit gates at ~0.2 % error).
    ///
    /// # Panics
    ///
    /// Panics if the cuts have different widths or either is trivial
    /// (all-zeros / all-ones).
    pub fn qaoa_shifted(
        name: impl Into<String>,
        base_cut: BitString,
        target_cut: BitString,
        p: usize,
    ) -> Self {
        assert_eq!(base_cut.width(), target_cut.width(), "cut width mismatch");
        let graph = Graph::complete_bipartite(base_cut);
        let qaoa = Qaoa::optimized(graph, p);
        let mask = base_cut ^ target_cut;
        let circuit = qaoa.circuit().with_premeasure_inversion(mask);
        Benchmark {
            name: name.into(),
            kind: BenchmarkKind::QaoaMaxCut,
            circuit,
            correct: CorrectSet::with_complement(target_cut),
        }
    }

    /// A QAOA benchmark over an arbitrary pre-built graph. The correct set
    /// is every optimal cut found by brute force.
    pub fn qaoa_on_graph(name: impl Into<String>, graph: Graph, p: usize) -> Self {
        let (_, cuts) = graph.max_cut_brute_force();
        let qaoa = Qaoa::optimized(graph, p);
        Benchmark {
            name: name.into(),
            kind: BenchmarkKind::QaoaMaxCut,
            circuit: qaoa.circuit(),
            correct: CorrectSet::new(cuts),
        }
    }

    /// The benchmark's name (paper nomenclature, e.g. `bv-4A`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel kind.
    pub fn kind(&self) -> BenchmarkKind {
        self.kind
    }

    /// The kernel circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The correct-answer set.
    pub fn correct(&self) -> &CorrectSet {
        &self.correct
    }

    /// Replaces the correct-answer set (e.g. to score only the listed
    /// partition of a max-cut instead of both orientations).
    ///
    /// # Panics
    ///
    /// Panics if the new set's width differs from the circuit width.
    #[must_use]
    pub fn with_correct_set(mut self, correct: CorrectSet) -> Self {
        assert_eq!(
            correct.width(),
            self.circuit.n_qubits(),
            "correct set width must match the circuit"
        );
        self.correct = correct;
        self
    }
}

fn bits(s: &str) -> BitString {
    s.parse().expect("suite bit strings are valid")
}

/// The Table 3 benchmarks sized for the five-qubit machines:
/// bv-4A, bv-4B, qaoa-4A (p=1), qaoa-4B (p=2).
pub fn suite_q5() -> Vec<Benchmark> {
    vec![
        Benchmark::bv("bv-4A", bits("0111")),
        Benchmark::bv("bv-4B", bits("1111")),
        Benchmark::qaoa("qaoa-4A", bits("0101"), 1),
        Benchmark::qaoa("qaoa-4B", bits("0111"), 2),
    ]
}

/// The Table 3 benchmarks sized for ibmq-melbourne:
/// bv-6, bv-7, qaoa-6 (p=2), qaoa-7 (p=2).
pub fn suite_q14() -> Vec<Benchmark> {
    vec![
        Benchmark::bv("bv-6", bits("011111")),
        Benchmark::bv("bv-7", bits("0111111")),
        Benchmark::qaoa("qaoa-6", bits("101011"), 2),
        Benchmark::qaoa("qaoa-7", bits("1010110"), 2),
    ]
}

/// The Table 2 QAOA study: five 6-node instances whose optimal cuts have
/// Hamming weight 1, 2, 3, 4, 4. Returns `(label, target cut)` pairs.
pub fn table2_graphs() -> Vec<(char, BitString)> {
    vec![
        ('A', bits("010000")),
        ('B', bits("010100")),
        ('C', bits("101001")),
        ('D', bits("101011")),
        ('E', bits("110110")),
    ]
}

/// The five Table 2 benchmark instances, built as gate-identical
/// XOR-shifted copies of the Graph-A program (see
/// [`Benchmark::qaoa_shifted`]).
///
/// These score only the *listed* partition string, not its complement.
/// QAOA output distributions are exactly Z2-symmetric (the global X flip
/// commutes with both the cost and mixer layers), so a complement-inclusive
/// PST would sum the weight-`w` and weight-`(n-w)` readout penalties and
/// could never show the paper's Hamming-weight trend; the trend the paper
/// reports is only consistent with counting the listed string.
pub fn table2_benchmarks(p: usize) -> Vec<Benchmark> {
    let base = bits("010000");
    table2_graphs()
        .into_iter()
        .map(|(label, target)| {
            Benchmark::qaoa_shifted(format!("graph-{label}"), base, target, p)
                .with_correct_set(CorrectSet::single(target))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::StateVector;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn q5_suite_matches_table3() {
        let suite = suite_q5();
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["bv-4A", "bv-4B", "qaoa-4A", "qaoa-4B"]);
        // BV instances are 5 qubits (4 + ancilla), QAOA 4 qubits.
        assert_eq!(suite[0].circuit().n_qubits(), 5);
        assert_eq!(suite[2].circuit().n_qubits(), 4);
    }

    #[test]
    fn q14_suite_matches_table3() {
        let suite = suite_q14();
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["bv-6", "bv-7", "qaoa-6", "qaoa-7"]);
        assert_eq!(suite[0].circuit().n_qubits(), 7);
        assert_eq!(suite[3].circuit().n_qubits(), 7);
    }

    #[test]
    fn table2_weights_are_increasing() {
        let weights: Vec<u32> = table2_graphs()
            .iter()
            .map(|(_, s)| s.hamming_weight())
            .collect();
        assert_eq!(weights, vec![1, 2, 3, 4, 4]);
    }

    #[test]
    fn bv_benchmarks_have_certain_ideal_output() {
        for b in suite_q5().iter().chain(suite_q14().iter()) {
            if b.kind() != BenchmarkKind::BernsteinVazirani {
                continue;
            }
            let psi = StateVector::from_circuit(b.circuit());
            let p: f64 = b
                .correct()
                .outputs()
                .iter()
                .map(|&s| psi.probability_of(s))
                .sum();
            assert!((p - 1.0).abs() < 1e-9, "{}: ideal PST = {p}", b.name());
        }
    }

    #[test]
    fn qaoa_benchmarks_peak_on_correct_cut() {
        for b in suite_q5() {
            if b.kind() != BenchmarkKind::QaoaMaxCut {
                continue;
            }
            let psi = StateVector::from_circuit(b.circuit());
            let ideal_pst: f64 = b
                .correct()
                .outputs()
                .iter()
                .map(|&s| psi.probability_of(s))
                .sum();
            // Far above the 2/2^n random-guess floor.
            assert!(ideal_pst > 0.3, "{}: ideal PST = {ideal_pst}", b.name());
        }
    }

    #[test]
    fn qaoa_on_graph_uses_brute_force_cuts() {
        let g = Graph::new(3, vec![(0, 1), (1, 2)]).unwrap();
        let b = Benchmark::qaoa_on_graph("path3", g, 1);
        // Path of 3 nodes: max cut 2, achieved by 010 and 101.
        assert_eq!(b.correct().outputs().len(), 2);
        assert!(b.correct().contains(&"010".parse().unwrap()));
        assert!(b.correct().contains(&"101".parse().unwrap()));
    }

    #[test]
    fn table2_benchmarks_are_gate_identical() {
        let benches = table2_benchmarks(1);
        assert_eq!(benches.len(), 5);
        let base_2q = benches[0].circuit().two_qubit_gate_count();
        for b in &benches {
            assert_eq!(
                b.circuit().two_qubit_gate_count(),
                base_2q,
                "{} has a different two-qubit gate count",
                b.name()
            );
        }
        // Gate totals differ only by the X-shift layer (at most 6 gates).
        let lens: Vec<usize> = benches.iter().map(|b| b.circuit().len()).collect();
        assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 6);
    }

    #[test]
    fn qaoa_shifted_peaks_on_target() {
        let base = bs("010000");
        let target = bs("101011");
        let b = Benchmark::qaoa_shifted("shifted", base, target, 1);
        let psi = StateVector::from_circuit(b.circuit());
        let base_b = Benchmark::qaoa("base", base, 1);
        let psi_base = StateVector::from_circuit(base_b.circuit());
        // The shifted instance gives `target` exactly the probability the
        // base instance gives `base`.
        assert!((psi.probability_of(target) - psi_base.probability_of(base)).abs() < 1e-9);
        assert!(b.correct().contains(&target));
        assert!(b.correct().contains(&target.inverted()));
    }

    #[test]
    fn bv_phase_output_is_key() {
        let b = Benchmark::bv_phase("sweep", "10110".parse().unwrap());
        assert_eq!(b.circuit().n_qubits(), 5);
        assert!(b.correct().contains(&"10110".parse().unwrap()));
    }
}
