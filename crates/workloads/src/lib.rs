//! # qworkloads — the paper's NISQ benchmark kernels
//!
//! Implements every workload Tannu & Qureshi evaluate:
//!
//! * [`BernsteinVazirani`] — key-recovery kernel (bv-4A/4B/6/7, and the
//!   all-keys sweeps of Figures 11(b) and 13);
//! * [`Graph`] / [`Qaoa`] — max-cut QAOA with deterministic angle training
//!   (qaoa-4A/4B/6/7 and the Table 2 graph study);
//! * [`ghz_circuit`] and friends — the state preparations behind the
//!   characterization figures;
//! * [`Benchmark`] with [`suite_q5`] / [`suite_q14`] — the Table 3 suite
//!   bundled with correct-answer sets.
//!
//! ## Example
//!
//! ```
//! use qworkloads::{suite_q5, BenchmarkKind};
//!
//! let suite = suite_q5();
//! assert_eq!(suite.len(), 4);
//! assert_eq!(suite[0].name(), "bv-4A");
//! assert_eq!(suite[0].kind(), BenchmarkKind::BernsteinVazirani);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bv;
pub mod qaoa;
pub mod states;
pub mod suite;

pub use bv::BernsteinVazirani;
pub use qaoa::{Graph, GraphError, Qaoa};
pub use states::{
    basis_state_circuit, ghz_circuit, uniform_superposition_circuit, w_state_circuit,
};
pub use suite::{suite_q14, suite_q5, table2_benchmarks, table2_graphs, Benchmark, BenchmarkKind};
