//! Thin binary shim over the testable library commands.
//!
//! Exit codes: 0 success, 2 usage error (bad command line, usage text is
//! printed), 1 runtime failure (the command was well-formed but failed).

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match invmeas_cli::run_cli(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("error: {failure}");
            if failure.is_usage() {
                eprintln!("\n{}", invmeas_cli::args::USAGE);
            }
            ExitCode::from(failure.exit_code())
        }
    }
}
