//! Thin binary shim over the testable library commands.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match invmeas_cli::args::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", invmeas_cli::args::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match invmeas_cli::execute(&cmd) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
