//! # invmeas-cli — command-line front end for the Invert-and-Measure stack
//!
//! Seven subcommands tie the workspace together for interactive use:
//!
//! * `devices` — the built-in machine models and their Table-1 statistics;
//! * `characterize` — measure a device's RBMS (brute force / ESCT / AWCT)
//!   and optionally persist it as a profile file;
//! * `profile-info` — inspect a saved profile;
//! * `run` — execute an OpenQASM 2.0 program on a device model under
//!   baseline/SIM/AIM, optionally routed through the mapper, with
//!   reliability metrics when the expected output is given;
//! * `serve` — start the long-running mitigation server
//!   ([`invmeas_service`]), which amortizes characterization across
//!   requests through its drift-aware profile cache;
//! * `submit` — send a QASM job to a running server and print the JSON
//!   response line;
//! * `svc` — control-plane calls (`status`, `health`, `shutdown`,
//!   `set-window`, `characterize`, `cluster-map`) against a running
//!   server; `health` maps degradation onto exit codes (0 healthy,
//!   1 degraded, 2 unreachable) for scripts and probes.
//!
//! `serve --cluster` joins the profile mesh (DESIGN.md §16); `submit`
//! and `svc` accept a comma-separated `--addr` seed list and rotate
//! through it when a node refuses the connection.
//!
//! The command implementations live in this library so they are unit- and
//! integration-testable; `main.rs` is a thin shim. Failures carry their
//! intended process exit code via [`CliFailure`]: usage errors exit 2,
//! runtime failures exit 1.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;

use args::{CharacterizeArgs, Command, Method, Policy, RunArgs, ServeArgs, SubmitArgs, SvcArgs};
use invmeas::{
    characterize_journaled, AdaptiveInvertMeasure, Baseline, CharSpec, MeasurementPolicy,
    ProfileMeta, RbmsTable, StaticInvertMeasure,
};
use invmeas_service::{
    CharacterizeRequest, Client, ClusterConfig, MethodKind, PolicyKind, Request, Response, Server,
    ServerConfig, SubmitRequest,
};
use qmetrics::{fmt_pct, fmt_prob, fmt_ratio, CorrectSet, ReliabilityReport, Table};
use qnoise::{DeviceModel, NoisyExecutor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Boxed error type for command execution.
pub type CliError = Box<dyn std::error::Error + Send + Sync>;

/// A CLI failure carrying its intended process exit code, so scripts can
/// tell a bad invocation (fix the command line) from a bad run (look at
/// the environment): usage errors exit 2, runtime failures exit 1.
#[derive(Debug)]
pub enum CliFailure {
    /// The argument vector did not parse (exit code 2).
    Usage(args::ArgError),
    /// The command parsed but failed while executing (exit code 1).
    Runtime(CliError),
    /// `svc health` reached a degraded server (exit code 1). Carries the
    /// health response line so monitoring still sees the details.
    Degraded(String),
    /// `svc health` could not reach the server at all (exit code 2).
    Unreachable(String),
}

impl CliFailure {
    /// The process exit code this failure maps to.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            CliFailure::Usage(_) | CliFailure::Unreachable(_) => 2,
            CliFailure::Runtime(_) | CliFailure::Degraded(_) => 1,
        }
    }

    /// Whether this is a usage error (and the caller should print usage).
    #[must_use]
    pub fn is_usage(&self) -> bool {
        matches!(self, CliFailure::Usage(_))
    }
}

impl fmt::Display for CliFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliFailure::Usage(e) => write!(f, "{e}"),
            CliFailure::Runtime(e) => write!(f, "{e}"),
            CliFailure::Degraded(line) => write!(f, "server is degraded: {line}"),
            CliFailure::Unreachable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliFailure {}

/// Parses and executes an argument vector (without the program name).
///
/// # Errors
///
/// [`CliFailure::Usage`] when the arguments do not parse,
/// [`CliFailure::Runtime`] when execution fails.
pub fn run_cli(argv: &[String]) -> Result<String, CliFailure> {
    let cmd = args::parse(argv).map_err(CliFailure::Usage)?;
    // `svc health` has its own three-way exit-code contract (0 healthy,
    // 1 degraded, 2 unreachable), so it bypasses the usual error mapping.
    if let Command::Svc(a) = &cmd {
        if a.op == args::SvcOp::Health {
            return health(a);
        }
    }
    execute(&cmd).map_err(CliFailure::Runtime)
}

fn health(a: &SvcArgs) -> Result<String, CliFailure> {
    match invmeas_service::call(&a.addr, &Request::Health) {
        Err(e) => Err(CliFailure::Unreachable(format!(
            "cannot reach server at {}: {e}",
            a.addr
        ))),
        Ok(Response::Health(h)) => {
            let degraded = h.degraded;
            let line = Response::Health(h).to_line();
            if degraded {
                Err(CliFailure::Degraded(line))
            } else {
                Ok(line + "\n")
            }
        }
        Ok(other) => Err(CliFailure::Runtime(
            format!("unexpected response to health: {}", other.to_line()).into(),
        )),
    }
}

/// Resolves a device name (`ibmqx2`, `ibmqx4`, `ibmq-melbourne`, or
/// `ideal-N`).
///
/// # Errors
///
/// Returns an error naming the unknown device.
pub fn resolve_device(name: &str) -> Result<DeviceModel, CliError> {
    match name {
        "ibmqx2" => Ok(DeviceModel::ibmqx2()),
        "ibmqx4" => Ok(DeviceModel::ibmqx4()),
        "ibmq-melbourne" | "ibmq_melbourne" => Ok(DeviceModel::ibmq_melbourne()),
        other => {
            if let Some(n) = other.strip_prefix("ideal-") {
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("bad ideal device size in {other:?}"))?;
                if n == 0 || n > 20 {
                    return Err(format!("ideal device size {n} out of range").into());
                }
                Ok(DeviceModel::ideal(n))
            } else {
                Err(format!(
                    "unknown device {other:?} (try: ibmqx2, ibmqx4, ibmq-melbourne, ideal-N)"
                )
                .into())
            }
        }
    }
}

/// Executes a parsed command, returning the rendered output.
///
/// # Errors
///
/// Propagates device resolution, I/O, parsing, and routing failures.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(args::USAGE.to_string()),
        Command::Devices => Ok(render_devices()),
        Command::Characterize(a) => characterize(a),
        Command::ProfileInfo { path } => profile_info(path),
        Command::Run(a) => run(a),
        Command::Serve(a) => serve(a),
        Command::Submit(a) => submit(a),
        Command::Svc(a) => svc(a),
    }
}

fn policy_kind(p: Policy) -> PolicyKind {
    match p {
        Policy::Baseline => PolicyKind::Baseline,
        Policy::Sim => PolicyKind::Sim,
        Policy::Aim => PolicyKind::Aim,
    }
}

fn method_kind(m: Method) -> MethodKind {
    match m {
        Method::Brute => MethodKind::Brute,
        Method::Esct => MethodKind::Esct,
        Method::Awct => MethodKind::Awct,
    }
}

fn serve(a: &ServeArgs) -> Result<String, CliError> {
    let faults: std::sync::Arc<dyn invmeas_faults::FaultInjector> = match &a.fault_plan {
        Some(path) => std::sync::Arc::new(
            invmeas_faults::FaultPlan::load(path)
                .map_err(|e| format!("cannot load fault plan {path}: {e}"))?,
        ),
        None => std::sync::Arc::new(invmeas_faults::NoFaults),
    };
    let net_faults = match &a.net_faults {
        Some(path) => Some(std::sync::Arc::new(
            invmeas_faults::NetFaultPlan::load(path)
                .map_err(|e| format!("cannot load net faults {path}: {e}"))?,
        )),
        None => None,
    };
    let cluster = if a.cluster.is_empty() {
        None
    } else {
        let mut c = ClusterConfig::new(a.cluster.clone(), &a.addr)?;
        c.replication = a.replication;
        c.heartbeat_ms = a.heartbeat_ms;
        c.heartbeat_miss_limit = a.heartbeat_miss_limit;
        Some(c)
    };
    let config = ServerConfig {
        addr: a.addr.clone(),
        workers: a.workers,
        queue_capacity: a.queue,
        event_loop: a.event_loop,
        queue_shards: a.shards,
        exec_threads: a.exec_threads,
        profile_shots: a.profile_shots,
        profile_seed: a.profile_seed,
        drift_amplitude: a.drift_amplitude,
        drift_threshold: a.drift_threshold,
        profile_dir: a.profile_dir.clone().map(std::path::PathBuf::from),
        idle_timeout_ms: a.idle_timeout_ms,
        retry_limit: a.retry_limit,
        retry_backoff_ms: a.retry_backoff_ms,
        breaker_failure_threshold: a.breaker_threshold,
        breaker_cooldown: a.breaker_cooldown,
        faults,
        net_faults,
        cluster,
        ..ServerConfig::default()
    };
    let server = Server::bind(config)?;
    // Scripts (and the CI smoke job) parse this line to learn the actual
    // port when binding to port 0, so it must reach stdout before serve()
    // blocks.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let counters = server.serve()?;
    Ok(format!(
        "final counters after drain:\n{}",
        counters.render()
    ))
}

/// Dials `addr`, which may be a single `HOST:PORT` or a comma-separated
/// seed list — the mesh entry points. The client rotates through the
/// seeds on connection failure, so a job survives any one node being
/// down.
fn dial(addr: &str) -> Result<Client, CliError> {
    let seeds: Vec<&str> = addr
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    Client::connect_seeds(&seeds).map_err(|e| format!("cannot reach server at {addr}: {e}").into())
}

/// Sends one request and renders the response as its JSON wire line, so
/// shell pipelines see exactly what the protocol carries.
fn service_call(addr: &str, request: &Request) -> Result<String, CliError> {
    let response = dial(addr)?
        .request(request)
        .map_err(|e| format!("cannot reach server at {addr}: {e}"))?;
    if let Response::Error { code, message } = &response {
        return Err(format!("server error {code}: {message}").into());
    }
    Ok(response.to_line() + "\n")
}

fn submit(a: &SubmitArgs) -> Result<String, CliError> {
    let qasm = std::fs::read_to_string(&a.qasm)?;
    let request = Request::Submit(SubmitRequest {
        device: a.device.clone(),
        qasm,
        policy: policy_kind(a.policy),
        shots: a.shots,
        seed: a.seed,
        expected: a.expected.clone(),
        deadline_ms: a.deadline_ms,
        fwd: false,
    });
    service_call(&a.addr, &request)
}

fn svc(a: &SvcArgs) -> Result<String, CliError> {
    if let args::SvcOp::ClusterMap { device } = &a.op {
        return cluster_map(&a.addr, device.as_deref());
    }
    let request = match &a.op {
        args::SvcOp::Status => Request::Status,
        // `svc health` is routed to `health()` by `run_cli` for its exit
        // codes; `execute` callers get the plain response line.
        args::SvcOp::Health => Request::Health,
        args::SvcOp::Shutdown => Request::Shutdown,
        args::SvcOp::SetWindow { window } => Request::SetWindow {
            window: *window,
            fwd: false,
        },
        args::SvcOp::Characterize {
            device,
            method,
            shots,
        } => Request::Characterize(CharacterizeRequest {
            device: device.clone(),
            method: method_kind(*method),
            shots: *shots,
            fwd: false,
        }),
        args::SvcOp::ClusterMap { .. } => unreachable!("handled above"),
    };
    service_call(&a.addr, &request)
}

/// Renders `svc cluster-map` human-readably: membership with liveness as
/// the answering node sees it, plus a device's route when requested.
fn cluster_map(addr: &str, device: Option<&str>) -> Result<String, CliError> {
    use std::fmt::Write as _;
    let request = Request::ClusterMap {
        device: device.map(str::to_string),
    };
    let response = dial(addr)?
        .request(&request)
        .map_err(|e| format!("cannot reach server at {addr}: {e}"))?;
    let m = match response {
        Response::ClusterMap(m) => m,
        Response::Error { code, message } => {
            return Err(format!("server error {code}: {message}").into())
        }
        other => {
            return Err(format!("unexpected response to cluster-map: {}", other.to_line()).into())
        }
    };
    let mut out = format!(
        "cluster of {} members (answering node is #{}):\n",
        m.members.len(),
        m.self_index
    );
    for (i, name) in m.members.iter().enumerate() {
        let alive = m.alive.get(i).copied().unwrap_or(false);
        let _ = writeln!(
            out,
            "  #{i} {name} {}{}",
            if alive { "alive" } else { "dead" },
            if i as u64 == m.self_index {
                " (self)"
            } else {
                ""
            },
        );
    }
    if let Some(r) = &m.route {
        let _ = writeln!(
            out,
            "route for {}: owner #{}, followers {}",
            r.device,
            r.owner,
            if r.followers.is_empty() {
                "none".to_string()
            } else {
                r.followers
                    .iter()
                    .map(|f| format!("#{f}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        );
    }
    Ok(out)
}

fn render_devices() -> String {
    let mut t = Table::new(&[
        "device",
        "qubits",
        "assign err (min/avg/max)",
        "meas window",
    ]);
    for dev in [
        DeviceModel::ibmqx2(),
        DeviceModel::ibmqx4(),
        DeviceModel::ibmq_melbourne(),
    ] {
        let (min, avg, max) = dev.assignment_error_stats();
        t.row_owned(vec![
            dev.name().to_string(),
            dev.n_qubits().to_string(),
            format!("{} / {} / {}", fmt_pct(min), fmt_pct(avg), fmt_pct(max)),
            format!("{:.1} us", dev.meas_duration_us()),
        ]);
    }
    format!("{t}\nplus ideal-N for a noiseless N-qubit reference\n")
}

/// The worker-thread count to use: the `--threads` value if given,
/// otherwise every available core.
fn resolve_threads(requested: Option<usize>) -> usize {
    requested.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The journal path a `characterize` invocation should use: the explicit
/// `--journal` value, or `<out>.journal` when `--resume` has only `--out`
/// to work from. `None` means run without checkpoints (the legacy path).
fn characterize_journal_path(a: &CharacterizeArgs) -> Option<std::path::PathBuf> {
    match (&a.journal, a.resume, &a.out) {
        (Some(j), _, _) => Some(std::path::PathBuf::from(j)),
        (None, true, Some(out)) => Some(std::path::PathBuf::from(format!("{out}.journal"))),
        _ => None,
    }
}

fn characterize(a: &CharacterizeArgs) -> Result<String, CliError> {
    use std::fmt::Write as _;
    let dev = resolve_device(&a.device)?;
    let n = dev.n_qubits();
    if a.method == Method::Brute && n > 14 {
        return Err("brute-force characterization limited to 14 qubits; use awct".into());
    }
    let exec = NoisyExecutor::from_device(&dev).with_threads(resolve_threads(a.threads));
    let journal = characterize_journal_path(a);
    let mut out = String::new();
    let table = match &journal {
        Some(path) => {
            // Checkpointed run: resumable and bit-identical to an
            // uninterrupted journaled run, but chunked differently from
            // the single-RNG legacy path, so the two paths' numerics are
            // not interchangeable.
            if a.method == Method::Esct && n > 16 {
                return Err(
                    "journaled ESCT characterization limited to 16 qubits; use awct".into(),
                );
            }
            let faults: Box<dyn invmeas_faults::FaultInjector> = match &a.fault_plan {
                Some(p) => Box::new(
                    invmeas_faults::FaultPlan::load(p)
                        .map_err(|e| format!("cannot load fault plan {p}: {e}"))?,
                ),
                None => Box::new(invmeas_faults::NoFaults),
            };
            let spec = match a.method {
                Method::Brute => CharSpec::brute(dev.name(), n, a.shots, a.seed),
                Method::Esct => CharSpec::esct(dev.name(), n, a.shots, a.seed),
                Method::Awct => {
                    CharSpec::awct(dev.name(), n, 4.min(n), 2.min(n - 1), a.shots, a.seed)
                }
            };
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent)?;
            }
            let (table, stats) = characterize_journaled(&exec, &spec, Some(path), faults.as_ref())
                .map_err(|e| format!("characterization failed: {e}"))?;
            if stats.resumed() {
                let _ = writeln!(
                    out,
                    "resumed {} of {} units from {}",
                    stats.resumed_units,
                    stats.total_units,
                    path.display()
                );
            }
            let _ = writeln!(
                out,
                "journal: {} checkpoints at {}",
                stats.checkpoints_written,
                path.display()
            );
            table
        }
        None => {
            let mut rng = StdRng::seed_from_u64(a.seed);
            match a.method {
                Method::Brute => RbmsTable::brute_force(&exec, a.shots, &mut rng),
                Method::Esct => RbmsTable::esct(&exec, a.shots, &mut rng),
                Method::Awct => RbmsTable::awct(&exec, 4.min(n), 2.min(n - 1), a.shots, &mut rng),
            }
        }
    };
    out.push_str(&render_profile(&table, dev.name()));
    if let Some(path) = &a.out {
        let meta = ProfileMeta {
            device: dev.name().to_string(),
            method: match a.method {
                Method::Brute => "brute",
                Method::Esct => "esct",
                Method::Awct => "awct",
            }
            .to_string(),
            seed: a.seed,
            window: if a.method == Method::Awct {
                4.min(n)
            } else {
                0
            },
        };
        table.save_v2_with(path, &meta, &invmeas_faults::NoFaults)?;
        out.push_str(&format!("\nprofile written to {path}\n"));
        // The journal exists to reproduce the profile; once the profile
        // is durable the checkpoints have served their purpose.
        if let Some(j) = &journal {
            if std::fs::remove_file(j).is_ok() {
                out.push_str(&format!("journal {} removed\n", j.display()));
            }
        }
    }
    Ok(out)
}

fn render_profile(table: &RbmsTable, label: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "RBMS profile of {label}: {} states, {} trials",
        table.strengths().len(),
        table.trials_used()
    );
    let _ = writeln!(
        out,
        "strongest {}  weakest {}  weight correlation {:.3}",
        table.strongest_state(),
        table.weakest_state(),
        table.hamming_correlation()
    );
    // Top and bottom five states.
    let rel = table.relative();
    let mut ranked: Vec<(usize, f64)> = rel.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let mut t = Table::new(&["rank", "state", "relative strength"]);
    let width = table.width();
    for (i, &(idx, v)) in ranked.iter().take(5).enumerate() {
        t.row_owned(vec![
            format!("{}", i + 1),
            qsim::BitString::from_value(idx as u64, width).to_string(),
            fmt_prob(v),
        ]);
    }
    for (i, &(idx, v)) in ranked.iter().rev().take(5).rev().enumerate() {
        t.row_owned(vec![
            format!("{}", ranked.len() - 4 + i),
            qsim::BitString::from_value(idx as u64, width).to_string(),
            fmt_prob(v),
        ]);
    }
    let _ = writeln!(out, "{t}");
    out
}

fn profile_info(path: &str) -> Result<String, CliError> {
    let (table, meta) = RbmsTable::load_with_meta(path)?;
    let mut out = match meta {
        Some(m) => format!(
            "format rbms v2 (checksummed): device {}  method {}  seed {}  window {}\n",
            m.device, m.method, m.seed, m.window
        ),
        None => "format rbms v1 (no checksum; re-save to upgrade)\n".to_string(),
    };
    out.push_str(&render_profile(&table, path));
    Ok(out)
}

fn run(a: &RunArgs) -> Result<String, CliError> {
    use std::fmt::Write as _;
    let dev = resolve_device(&a.device)?;
    let text = std::fs::read_to_string(&a.qasm)?;
    let logical = qsim::qasm::from_qasm(&text)?;
    let mut rng = StdRng::seed_from_u64(a.seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "loaded {}: {} qubits, {} gates ({} two-qubit)",
        a.qasm,
        logical.n_qubits(),
        logical.len(),
        logical.two_qubit_gate_count()
    );

    // Optionally route onto the device.
    let (circuit, routed) = if a.route {
        let routed = qmapper::route_auto(&logical, &dev)?;
        let _ = writeln!(
            out,
            "routed onto {} with {} swaps (output layout {:?})",
            dev.name(),
            routed.swap_count(),
            routed.output_layout()
        );
        (routed.circuit().clone(), Some(routed))
    } else {
        if logical.n_qubits() != dev.n_qubits() {
            return Err(format!(
                "program has {} qubits but {} has {}; pass --route",
                logical.n_qubits(),
                dev.name(),
                dev.n_qubits()
            )
            .into());
        }
        (logical.clone(), None)
    };

    let exec = NoisyExecutor::from_device(&dev).with_threads(resolve_threads(a.threads));
    let width = circuit.n_qubits();
    let policy: Box<dyn MeasurementPolicy> = match a.policy {
        Policy::Baseline => Box::new(Baseline),
        Policy::Sim => Box::new(StaticInvertMeasure::four_mode(width)),
        Policy::Aim => {
            let profile = match &a.profile {
                Some(path) => {
                    let p = RbmsTable::load(path)?;
                    if p.width() != width {
                        return Err(format!(
                            "profile width {} does not match register {}",
                            p.width(),
                            width
                        )
                        .into());
                    }
                    p
                }
                None => {
                    if width <= 5 {
                        RbmsTable::brute_force(&exec, 4096, &mut rng)
                    } else {
                        RbmsTable::awct(&exec, 4, 2, 4096, &mut rng)
                    }
                }
            };
            Box::new(AdaptiveInvertMeasure::new(profile))
        }
    };

    let physical_log = policy.execute(&circuit, a.shots, &exec, &mut rng);
    let log = match &routed {
        Some(r) => r.logical_counts(&physical_log),
        None => physical_log,
    };

    let _ = writeln!(out, "\npolicy {} over {} trials:", policy.name(), a.shots);
    let mut t = Table::new(&["output", "count", "frequency"]);
    for (s, n) in log.ranked().into_iter().take(10) {
        t.row_owned(vec![
            s.to_string(),
            n.to_string(),
            fmt_prob(n as f64 / log.total() as f64),
        ]);
    }
    let _ = writeln!(out, "{t}");

    if let Some(expected) = &a.expected {
        let expected: qsim::BitString = expected.parse()?;
        if expected.width() != log.width() {
            return Err(format!(
                "--expected has {} bits but outputs have {}",
                expected.width(),
                log.width()
            )
            .into());
        }
        let r = ReliabilityReport::evaluate(&log, &CorrectSet::single(expected));
        let _ = writeln!(
            out,
            "PST {}  IST {}  ROCA {}",
            fmt_prob(r.pst),
            fmt_ratio(r.ist),
            r.roca.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_known_devices() {
        assert_eq!(resolve_device("ibmqx2").unwrap().n_qubits(), 5);
        assert_eq!(resolve_device("ibmq-melbourne").unwrap().n_qubits(), 14);
        assert_eq!(resolve_device("ideal-7").unwrap().n_qubits(), 7);
        assert!(resolve_device("ideal-0").is_err());
        assert!(resolve_device("tokyo").is_err());
    }

    #[test]
    fn devices_listing_renders() {
        let out = execute(&Command::Devices).unwrap();
        assert!(out.contains("ibmqx2"));
        assert!(out.contains("ibmq-melbourne"));
        assert!(out.contains("ideal-N"));
    }

    #[test]
    fn characterize_and_inspect_roundtrip() {
        let dir = std::env::temp_dir().join("invmeas-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("qx4.rbms");
        let out = execute(&Command::Characterize(CharacterizeArgs {
            device: "ibmqx4".into(),
            method: Method::Brute,
            shots: 256,
            out: Some(path.to_string_lossy().into_owned()),
            seed: 1,
            threads: Some(2),
            journal: None,
            resume: false,
            fault_plan: None,
        }))
        .unwrap();
        assert!(out.contains("RBMS profile"));
        assert!(out.contains("profile written"));
        let info = execute(&Command::ProfileInfo {
            path: path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(info.contains("strongest"));
        assert!(info.contains("format rbms v2"), "{info}");
        assert!(info.contains("device ibmqx4"), "{info}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journaled_characterize_resumes_after_crash_byte_identically() {
        let dir = std::env::temp_dir().join("invmeas-cli-journal-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let args_for = |out: &std::path::Path, fault_plan: Option<&std::path::Path>, resume| {
            CharacterizeArgs {
                device: "ibmqx2".into(),
                method: Method::Brute,
                shots: 400,
                out: Some(out.to_string_lossy().into_owned()),
                seed: 11,
                threads: Some(2),
                journal: None,
                resume,
                fault_plan: fault_plan.map(|p| p.to_string_lossy().into_owned()),
            }
        };

        // Reference: an uninterrupted journaled run.
        let clean_out = dir.join("clean.rbms");
        let report = execute(&Command::Characterize(args_for(&clean_out, None, true))).unwrap();
        assert!(report.contains("journal:"), "{report}");
        assert!(
            report.contains("journal") && report.contains("removed"),
            "{report}"
        );
        let clean_bytes = std::fs::read(&clean_out).unwrap();

        // Crash run: a scripted panic at the third journal checkpoint.
        let plan_path = dir.join("kill.plan");
        std::fs::write(
            &plan_path,
            "faultplan v1\nseed 0\njournal-write 3 panic scripted kill\n",
        )
        .unwrap();
        let crash_out = dir.join("crash.rbms");
        let crash_args = args_for(&crash_out, Some(&plan_path), true);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&Command::Characterize(crash_args.clone()))
        }));
        assert!(panicked.is_err(), "scripted panic must fire");
        let journal_path = dir.join("crash.rbms.journal");
        assert!(journal_path.exists(), "journal must survive the crash");
        assert!(
            !crash_out.exists(),
            "no profile was written before the crash"
        );

        // Resume: picks up the surviving checkpoints and finishes.
        let report = execute(&Command::Characterize(args_for(&crash_out, None, true))).unwrap();
        assert!(report.contains("resumed 2 of"), "{report}");
        let resumed_bytes = std::fs::read(&crash_out).unwrap();
        assert_eq!(
            resumed_bytes, clean_bytes,
            "resumed profile must be byte-identical to the uninterrupted run"
        );
        assert!(
            !journal_path.exists(),
            "journal is removed after a durable save"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_qasm_end_to_end_with_metrics() {
        let dir = std::env::temp_dir().join("invmeas-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let qasm_path = dir.join("prog.qasm");
        // A 5-qubit all-ones preparation.
        let circuit = qsim::Circuit::basis_state_preparation("11111".parse().unwrap());
        std::fs::write(&qasm_path, qsim::qasm::to_qasm(&circuit)).unwrap();

        let base = execute(&Command::Run(RunArgs {
            qasm: qasm_path.to_string_lossy().into_owned(),
            device: "ibmqx4".into(),
            policy: Policy::Baseline,
            shots: 2000,
            expected: Some("11111".into()),
            profile: None,
            route: false,
            seed: 5,
            threads: Some(2),
        }))
        .unwrap();
        assert!(base.contains("PST"), "{base}");
        let aim = execute(&Command::Run(RunArgs {
            qasm: qasm_path.to_string_lossy().into_owned(),
            device: "ibmqx4".into(),
            policy: Policy::Aim,
            shots: 2000,
            expected: Some("11111".into()),
            profile: None,
            route: false,
            seed: 5,
            threads: Some(2),
        }))
        .unwrap();
        assert!(aim.contains("policy aim"), "{aim}");
        std::fs::remove_file(&qasm_path).ok();
    }

    #[test]
    fn run_with_routing_folds_outputs() {
        let dir = std::env::temp_dir().join("invmeas-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let qasm_path = dir.join("route.qasm");
        let circuit = qsim::Circuit::basis_state_preparation("101".parse().unwrap());
        std::fs::write(&qasm_path, qsim::qasm::to_qasm(&circuit)).unwrap();
        let out = execute(&Command::Run(RunArgs {
            qasm: qasm_path.to_string_lossy().into_owned(),
            device: "ibmq-melbourne".into(),
            policy: Policy::Baseline,
            shots: 500,
            expected: Some("101".into()),
            profile: None,
            route: true,
            seed: 3,
            threads: None,
        }))
        .unwrap();
        assert!(out.contains("routed onto"), "{out}");
        assert!(out.contains("PST"), "{out}");
        std::fs::remove_file(&qasm_path).ok();
    }

    #[test]
    fn usage_and_runtime_failures_map_to_distinct_exit_codes() {
        let argv = |s: &str| -> Vec<String> { s.split_whitespace().map(str::to_string).collect() };
        // Bad command line → usage error, exit 2.
        let usage = run_cli(&argv("characterize")).unwrap_err();
        assert_eq!(usage.exit_code(), 2);
        assert!(usage.is_usage());
        assert!(usage.to_string().contains("requires --device"));
        let usage = run_cli(&argv("svc reboot")).unwrap_err();
        assert_eq!(usage.exit_code(), 2);
        // Well-formed command that fails at runtime → exit 1.
        let runtime = run_cli(&argv("run missing.qasm --device tokyo")).unwrap_err();
        assert_eq!(runtime.exit_code(), 1);
        assert!(!runtime.is_usage());
        let runtime = run_cli(&argv("profile-info no-such-file.rbms")).unwrap_err();
        assert_eq!(runtime.exit_code(), 1);
        // Success path still returns output.
        assert!(run_cli(&argv("devices")).unwrap().contains("ibmqx2"));
    }

    #[test]
    fn health_against_no_server_exits_unreachable() {
        let argv: Vec<String> = ["svc", "health", "--addr", "127.0.0.1:9"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let failure = run_cli(&argv).unwrap_err();
        assert_eq!(failure.exit_code(), 2, "unreachable is exit 2");
        assert!(!failure.is_usage(), "not a usage error despite the code");
        assert!(
            failure.to_string().contains("cannot reach server"),
            "{failure}"
        );
    }

    #[test]
    fn submit_without_a_server_is_a_runtime_failure() {
        let dir = std::env::temp_dir().join("invmeas-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let qasm_path = dir.join("svc.qasm");
        let circuit = qsim::Circuit::basis_state_preparation("11".parse().unwrap());
        std::fs::write(&qasm_path, qsim::qasm::to_qasm(&circuit)).unwrap();
        // Port 9 (discard) is never a live mitigation server.
        let argv: Vec<String> = [
            "submit",
            qasm_path.to_str().unwrap(),
            "--device",
            "ibmqx2",
            "--addr",
            "127.0.0.1:9",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let failure = run_cli(&argv).unwrap_err();
        assert_eq!(
            failure.exit_code(),
            1,
            "connection refusal is a runtime failure"
        );
        assert!(
            failure.to_string().contains("cannot reach server"),
            "{failure}"
        );
        std::fs::remove_file(&qasm_path).ok();
    }

    #[test]
    fn serve_and_submit_roundtrip_through_the_cli_layer() {
        // Bind the server directly (port 0) so the test does not race over
        // a fixed port; the CLI layer is exercised for submit + svc.
        let server = Server::bind(ServerConfig {
            workers: 1,
            profile_shots: 64,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.serve());

        let dir = std::env::temp_dir().join("invmeas-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let qasm_path = dir.join("cli-serve.qasm");
        let circuit = qsim::Circuit::basis_state_preparation("11111".parse().unwrap());
        std::fs::write(&qasm_path, qsim::qasm::to_qasm(&circuit)).unwrap();

        let argv =
            |parts: &[&str]| -> Vec<String> { parts.iter().map(ToString::to_string).collect() };
        let out = run_cli(&argv(&[
            "submit",
            qasm_path.to_str().unwrap(),
            "--device",
            "ibmqx4",
            "--addr",
            &addr,
            "--policy",
            "sim",
            "--shots",
            "500",
            "--expected",
            "11111",
        ]))
        .unwrap();
        assert!(out.contains("\"op\":\"submit\""), "{out}");
        assert!(out.contains("\"pst\":"), "{out}");

        let out = run_cli(&argv(&["svc", "status", "--addr", &addr])).unwrap();
        assert!(out.contains("\"op\":\"status\""), "{out}");

        // A quiet server with no open breakers is healthy: exit 0.
        let out = run_cli(&argv(&["svc", "health", "--addr", &addr])).unwrap();
        assert!(out.contains("\"op\":\"health\""), "{out}");
        assert!(out.contains("\"degraded\":false"), "{out}");

        let out = run_cli(&argv(&["svc", "shutdown", "--addr", &addr])).unwrap();
        assert!(out.contains("\"op\":\"shutdown\""), "{out}");
        handle.join().unwrap().unwrap();
        std::fs::remove_file(&qasm_path).ok();
    }

    #[test]
    fn width_mismatch_without_route_is_reported() {
        let dir = std::env::temp_dir().join("invmeas-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let qasm_path = dir.join("narrow.qasm");
        let circuit = qsim::Circuit::basis_state_preparation("11".parse().unwrap());
        std::fs::write(&qasm_path, qsim::qasm::to_qasm(&circuit)).unwrap();
        let e = execute(&Command::Run(RunArgs {
            qasm: qasm_path.to_string_lossy().into_owned(),
            device: "ibmqx2".into(),
            policy: Policy::Baseline,
            shots: 10,
            expected: None,
            profile: None,
            route: false,
            seed: 0,
            threads: None,
        }))
        .unwrap_err()
        .to_string();
        assert!(e.contains("pass --route"), "{e}");
        std::fs::remove_file(&qasm_path).ok();
    }
}
