//! Hand-rolled argument parsing for the `invmeas` CLI.
//!
//! Kept dependency-free (no clap) per the workspace's offline-dependency
//! policy; the grammar is small enough that explicit parsing is clearer
//! than a derive anyway.

use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the built-in device models.
    Devices,
    /// Characterize a device's RBMS.
    Characterize(CharacterizeArgs),
    /// Inspect a saved profile.
    ProfileInfo {
        /// Path to the profile file.
        path: String,
    },
    /// Run a QASM program under a policy.
    Run(RunArgs),
    /// Start the long-running mitigation server.
    Serve(ServeArgs),
    /// Submit a QASM program to a running server.
    Submit(SubmitArgs),
    /// Control-plane calls against a running server.
    Svc(SvcArgs),
    /// Print usage.
    Help,
}

/// Which characterization technique to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Prepare and measure every basis state.
    Brute,
    /// Equal-superposition characterization.
    Esct,
    /// Sliding-window characterization.
    Awct,
}

/// Which measurement policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Standard measurement.
    Baseline,
    /// Static Invert-and-Measure (four strings).
    Sim,
    /// Adaptive Invert-and-Measure.
    Aim,
}

/// Arguments to `characterize`.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeArgs {
    /// Device name (`ibmqx2`, `ibmqx4`, `ibmq-melbourne`, `ideal-N`).
    pub device: String,
    /// Technique.
    pub method: Method,
    /// Trial budget (meaning depends on the technique).
    pub shots: u64,
    /// Optional output profile path.
    pub out: Option<String>,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for batched sweeps (`None` = all available cores).
    pub threads: Option<usize>,
    /// Optional checkpoint-journal path (defaults to `<out>.journal` when
    /// `--resume` is given with `--out`).
    pub journal: Option<String>,
    /// Resume from an existing checkpoint journal instead of starting over.
    pub resume: bool,
    /// Optional `faultplan v1` script for chaos testing the journal path.
    pub fault_plan: Option<String>,
}

/// Arguments to `run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Path to the OpenQASM 2.0 program.
    pub qasm: String,
    /// Device name.
    pub device: String,
    /// Policy.
    pub policy: Policy,
    /// Trial budget.
    pub shots: u64,
    /// Expected correct output (enables metrics).
    pub expected: Option<String>,
    /// Pre-measured profile to load for AIM.
    pub profile: Option<String>,
    /// Route the logical circuit onto the device first.
    pub route: bool,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for batched sweeps (`None` = all available cores).
    pub threads: Option<usize>,
}

/// Arguments to `serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Bind address (`HOST:PORT`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker-pool size.
    pub workers: usize,
    /// Bounded job-queue capacity.
    pub queue: usize,
    /// Serve with the readiness-driven event loop (`true`, the default)
    /// or the thread-per-connection baseline (`false`).
    pub event_loop: bool,
    /// Run-queue shards (0 = auto: `min(workers, 8)`).
    pub shards: usize,
    /// Executor threads per job.
    pub exec_threads: usize,
    /// Default characterization budget.
    pub profile_shots: u64,
    /// Characterization RNG seed.
    pub profile_seed: u64,
    /// Per-window calibration-drift amplitude.
    pub drift_amplitude: f64,
    /// Profile-cache drift-score invalidation threshold.
    pub drift_threshold: f64,
    /// Optional profile persistence directory.
    pub profile_dir: Option<String>,
    /// Idle-connection reap timeout in milliseconds (0 disables).
    pub idle_timeout_ms: u64,
    /// Retries after a transient characterization failure.
    pub retry_limit: u32,
    /// Base retry backoff in milliseconds.
    pub retry_backoff_ms: u64,
    /// Consecutive failures that open a device's circuit breaker.
    pub breaker_threshold: u32,
    /// Degraded serves while open before a half-open probe.
    pub breaker_cooldown: u32,
    /// Optional `faultplan v1` script for chaos testing.
    pub fault_plan: Option<String>,
    /// Optional `netfaults v1` script driving the network fault fabric
    /// (partitions, byte drops, latency, slow writes) for chaos testing.
    pub net_faults: Option<String>,
    /// Profile-mesh membership: every node's listen address, identically
    /// ordered on all nodes (empty = single-node, the default).
    pub cluster: Vec<String>,
    /// Followers per device when clustered.
    pub replication: usize,
    /// Heartbeat probe interval in milliseconds when clustered.
    pub heartbeat_ms: u64,
    /// Consecutive missed heartbeats before a peer is declared dead.
    pub heartbeat_miss_limit: u32,
}

/// Arguments to `submit`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Path to the OpenQASM 2.0 program.
    pub qasm: String,
    /// Server address (`HOST:PORT`).
    pub addr: String,
    /// Device name.
    pub device: String,
    /// Policy.
    pub policy: Policy,
    /// Trial budget.
    pub shots: u64,
    /// RNG seed.
    pub seed: u64,
    /// Expected correct output (enables metrics in the response).
    pub expected: Option<String>,
    /// Queue-time budget in milliseconds (expired jobs answer `504`).
    pub deadline_ms: Option<u64>,
}

/// A control-plane operation for `svc`.
#[derive(Debug, Clone, PartialEq)]
pub enum SvcOp {
    /// Queue/cache/counter snapshot.
    Status,
    /// Liveness/degradation probe (exit 0 healthy, 1 degraded,
    /// 2 unreachable).
    Health,
    /// Graceful drain and stop.
    Shutdown,
    /// Set the calibration-window index.
    SetWindow {
        /// The new window index.
        window: u64,
    },
    /// Warm or refresh the profile cache.
    Characterize {
        /// Device name.
        device: String,
        /// Technique.
        method: Method,
        /// Trial budget (0 = server default).
        shots: u64,
    },
    /// Fetch the cluster membership map (and optionally one device's
    /// route) from a mesh node.
    ClusterMap {
        /// Device to route, if any.
        device: Option<String>,
    },
}

/// Arguments to `svc`.
#[derive(Debug, Clone, PartialEq)]
pub struct SvcArgs {
    /// Server address (`HOST:PORT`).
    pub addr: String,
    /// The operation.
    pub op: SvcOp,
}

/// Error produced while parsing arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn err(msg: impl Into<String>) -> ArgError {
    ArgError(msg.into())
}

/// The usage text.
pub const USAGE: &str = "\
invmeas — Invert-and-Measure command line

USAGE:
  invmeas devices
  invmeas characterize --device <NAME> [--method brute|esct|awct]
                       [--shots N] [--out FILE] [--seed N] [--threads N]
                       [--journal FILE] [--resume] [--fault-plan FILE]
  invmeas profile-info <FILE>
  invmeas run <FILE.qasm> --device <NAME> [--policy baseline|sim|aim]
              [--shots N] [--expected BITS] [--profile FILE] [--route]
              [--seed N] [--threads N]
  invmeas serve [--addr HOST:PORT] [--workers N] [--queue N]
                [--event-loop on|off] [--shards N]
                [--exec-threads N] [--profile-shots N] [--profile-seed N]
                [--drift-amplitude X] [--drift-threshold X]
                [--profile-dir DIR] [--idle-timeout-ms N]
                [--retry-limit N] [--retry-backoff-ms N]
                [--breaker-threshold N] [--breaker-cooldown N]
                [--fault-plan FILE] [--net-faults FILE]
                [--cluster ADDR,ADDR,...] [--replication N]
                [--heartbeat-ms N] [--heartbeat-miss-limit N]
  invmeas submit <FILE.qasm> --device <NAME> [--addr HOST:PORT[,HOST:PORT...]]
                 [--policy baseline|sim|aim] [--shots N] [--seed N]
                 [--expected BITS] [--deadline-ms N]
  invmeas svc status|shutdown|health [--addr HOST:PORT]
  invmeas svc set-window <N> [--addr HOST:PORT]
  invmeas svc characterize --device <NAME> [--addr HOST:PORT]
                           [--method brute|esct|awct] [--shots N]
  invmeas svc cluster-map [--device <NAME>] [--addr HOST:PORT]

DEVICES: ibmqx2, ibmqx4, ibmq-melbourne, ideal-N (e.g. ideal-5)

--threads controls the worker pool for batched circuit sweeps
(characterization states/windows, SIM groups, AIM targeted runs); the
default uses every available core. Results are identical for any value.

serve runs the mitigation service (newline-delimited JSON over TCP) and
prints `listening on HOST:PORT` once the socket is bound; submit and svc
talk to it (default --addr 127.0.0.1:7878). Exit codes: 2 for usage
errors, 1 for runtime failures.

--fault-plan loads a `faultplan v1` script that injects deterministic
faults (errors, latency, panics, torn writes) for chaos testing; see
DESIGN.md §12. --net-faults loads a `netfaults v1` script that drives
the network fault fabric (connect refusals, partitions, byte drops,
latency, slow writes, truncated and duplicated frames) deterministically
by arrival count; see DESIGN.md §17. `svc health` exits 0 when healthy,
1 when degraded (open circuit breakers or draining), 2 when the server
is unreachable.

characterize --journal writes a checkpoint after every completed work
unit so an interrupted run can be resumed with --resume (bit-identical
to an uninterrupted run); --resume with --out but no --journal uses
<out>.journal. See DESIGN.md §13.

serve --cluster joins a profile mesh: pass the *same* comma-separated
member list to every node (this node's --addr must appear in it) and a
--profile-dir. Devices hash to an owning node; finished profiles and
characterization journals replicate to --replication followers, and a
follower promotes when the owner dies. submit/--addr accepts a
comma-separated seed list and rotates through it on connection failure;
`svc cluster-map` shows membership, liveness, and a device's route.
See DESIGN.md §16.
";

/// The default service address shared by `serve`, `submit`, and `svc`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns an [`ArgError`] describing the first problem encountered.
pub fn parse(args: &[String]) -> Result<Command, ArgError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("-h") | Some("--help") => Ok(Command::Help),
        Some("devices") => {
            if it.next().is_some() {
                return Err(err("devices takes no arguments"));
            }
            Ok(Command::Devices)
        }
        Some("profile-info") => {
            let path = it.next().ok_or_else(|| err("profile-info needs a file"))?;
            if it.next().is_some() {
                return Err(err("profile-info takes one argument"));
            }
            Ok(Command::ProfileInfo {
                path: path.to_string(),
            })
        }
        Some("characterize") => parse_characterize(&args[1..]),
        Some("run") => parse_run(&args[1..]),
        Some("serve") => parse_serve(&args[1..]),
        Some("submit") => parse_submit(&args[1..]),
        Some("svc") => parse_svc(&args[1..]),
        Some(other) => Err(err(format!("unknown command {other:?}"))),
    }
}

fn parse_u64(flag: &str, value: Option<&str>) -> Result<u64, ArgError> {
    value
        .ok_or_else(|| err(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| err(format!("{flag} needs an integer")))
}

fn parse_threads(value: Option<&str>) -> Result<usize, ArgError> {
    let n: usize = value
        .ok_or_else(|| err("--threads needs a value"))?
        .parse()
        .map_err(|_| err("--threads needs an integer"))?;
    if n == 0 {
        return Err(err("--threads must be at least 1"));
    }
    Ok(n)
}

fn parse_characterize(args: &[String]) -> Result<Command, ArgError> {
    let mut out = CharacterizeArgs {
        device: String::new(),
        method: Method::Brute,
        shots: 8192,
        out: None,
        seed: 2019,
        threads: None,
        journal: None,
        resume: false,
        fault_plan: None,
    };
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        match flag {
            "--device" => {
                out.device = it
                    .next()
                    .ok_or_else(|| err("--device needs a name"))?
                    .to_string()
            }
            "--method" => {
                out.method = match it.next() {
                    Some("brute") => Method::Brute,
                    Some("esct") => Method::Esct,
                    Some("awct") => Method::Awct,
                    other => return Err(err(format!("bad --method {other:?}"))),
                }
            }
            "--shots" => out.shots = parse_u64("--shots", it.next())?,
            "--seed" => out.seed = parse_u64("--seed", it.next())?,
            "--threads" => out.threads = Some(parse_threads(it.next())?),
            "--out" => {
                out.out = Some(
                    it.next()
                        .ok_or_else(|| err("--out needs a path"))?
                        .to_string(),
                )
            }
            "--journal" => {
                out.journal = Some(
                    it.next()
                        .ok_or_else(|| err("--journal needs a path"))?
                        .to_string(),
                )
            }
            "--resume" => out.resume = true,
            "--fault-plan" => {
                out.fault_plan = Some(
                    it.next()
                        .ok_or_else(|| err("--fault-plan needs a path"))?
                        .to_string(),
                )
            }
            other => return Err(err(format!("unknown flag {other:?}"))),
        }
    }
    if out.device.is_empty() {
        return Err(err("characterize requires --device"));
    }
    if out.resume && out.journal.is_none() && out.out.is_none() {
        return Err(err("--resume needs --journal (or --out to derive one)"));
    }
    Ok(Command::Characterize(out))
}

fn parse_run(args: &[String]) -> Result<Command, ArgError> {
    let mut qasm: Option<String> = None;
    let mut out = RunArgs {
        qasm: String::new(),
        device: String::new(),
        policy: Policy::Baseline,
        shots: 8192,
        expected: None,
        profile: None,
        route: false,
        seed: 2019,
        threads: None,
    };
    let mut it = args.iter().map(String::as_str).peekable();
    while let Some(tok) = it.next() {
        match tok {
            "--device" => {
                out.device = it
                    .next()
                    .ok_or_else(|| err("--device needs a name"))?
                    .to_string()
            }
            "--policy" => {
                out.policy = match it.next() {
                    Some("baseline") => Policy::Baseline,
                    Some("sim") => Policy::Sim,
                    Some("aim") => Policy::Aim,
                    other => return Err(err(format!("bad --policy {other:?}"))),
                }
            }
            "--shots" => out.shots = parse_u64("--shots", it.next())?,
            "--seed" => out.seed = parse_u64("--seed", it.next())?,
            "--threads" => out.threads = Some(parse_threads(it.next())?),
            "--expected" => {
                out.expected = Some(
                    it.next()
                        .ok_or_else(|| err("--expected needs a bit string"))?
                        .to_string(),
                )
            }
            "--profile" => {
                out.profile = Some(
                    it.next()
                        .ok_or_else(|| err("--profile needs a path"))?
                        .to_string(),
                )
            }
            "--route" => out.route = true,
            flag if flag.starts_with("--") => return Err(err(format!("unknown flag {flag:?}"))),
            positional => {
                if qasm.is_some() {
                    return Err(err(format!("unexpected argument {positional:?}")));
                }
                qasm = Some(positional.to_string());
            }
        }
    }
    out.qasm = qasm.ok_or_else(|| err("run requires a QASM file"))?;
    if out.device.is_empty() {
        return Err(err("run requires --device"));
    }
    Ok(Command::Run(out))
}

fn parse_usize(flag: &str, value: Option<&str>) -> Result<usize, ArgError> {
    let n: usize = value
        .ok_or_else(|| err(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| err(format!("{flag} needs an integer")))?;
    if n == 0 {
        return Err(err(format!("{flag} must be at least 1")));
    }
    Ok(n)
}

fn parse_u32(flag: &str, value: Option<&str>) -> Result<u32, ArgError> {
    value
        .ok_or_else(|| err(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| err(format!("{flag} needs an integer")))
}

fn parse_f64(flag: &str, value: Option<&str>) -> Result<f64, ArgError> {
    let x: f64 = value
        .ok_or_else(|| err(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| err(format!("{flag} needs a number")))?;
    if !x.is_finite() || x < 0.0 {
        return Err(err(format!("{flag} must be a non-negative number")));
    }
    Ok(x)
}

fn parse_serve(args: &[String]) -> Result<Command, ArgError> {
    let mut out = ServeArgs {
        addr: DEFAULT_ADDR.to_string(),
        workers: 2,
        queue: 32,
        event_loop: true,
        shards: 0,
        exec_threads: 1,
        profile_shots: 2048,
        profile_seed: 2019,
        drift_amplitude: 0.05,
        drift_threshold: 0.0,
        profile_dir: None,
        idle_timeout_ms: 30_000,
        retry_limit: 2,
        retry_backoff_ms: 25,
        breaker_threshold: 3,
        breaker_cooldown: 4,
        fault_plan: None,
        net_faults: None,
        cluster: Vec::new(),
        replication: 1,
        heartbeat_ms: 1000,
        heartbeat_miss_limit: 3,
    };
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        match flag {
            "--addr" => {
                out.addr = it
                    .next()
                    .ok_or_else(|| err("--addr needs HOST:PORT"))?
                    .to_string()
            }
            "--workers" => out.workers = parse_usize("--workers", it.next())?,
            "--queue" => out.queue = parse_usize("--queue", it.next())?,
            "--event-loop" => {
                out.event_loop = match it.next() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => return Err(err("--event-loop needs on|off")),
                }
            }
            "--shards" => out.shards = parse_usize("--shards", it.next())?,
            "--exec-threads" => out.exec_threads = parse_usize("--exec-threads", it.next())?,
            "--profile-shots" => out.profile_shots = parse_u64("--profile-shots", it.next())?,
            "--profile-seed" => out.profile_seed = parse_u64("--profile-seed", it.next())?,
            "--drift-amplitude" => out.drift_amplitude = parse_f64("--drift-amplitude", it.next())?,
            "--drift-threshold" => out.drift_threshold = parse_f64("--drift-threshold", it.next())?,
            "--profile-dir" => {
                out.profile_dir = Some(
                    it.next()
                        .ok_or_else(|| err("--profile-dir needs a path"))?
                        .to_string(),
                )
            }
            "--idle-timeout-ms" => out.idle_timeout_ms = parse_u64("--idle-timeout-ms", it.next())?,
            "--retry-limit" => out.retry_limit = parse_u32("--retry-limit", it.next())?,
            "--retry-backoff-ms" => {
                out.retry_backoff_ms = parse_u64("--retry-backoff-ms", it.next())?
            }
            "--breaker-threshold" => {
                out.breaker_threshold = parse_u32("--breaker-threshold", it.next())?;
                if out.breaker_threshold == 0 {
                    return Err(err("--breaker-threshold must be at least 1"));
                }
            }
            "--breaker-cooldown" => {
                out.breaker_cooldown = parse_u32("--breaker-cooldown", it.next())?;
                if out.breaker_cooldown == 0 {
                    return Err(err("--breaker-cooldown must be at least 1"));
                }
            }
            "--fault-plan" => {
                out.fault_plan = Some(
                    it.next()
                        .ok_or_else(|| err("--fault-plan needs a path"))?
                        .to_string(),
                )
            }
            "--net-faults" => {
                out.net_faults = Some(
                    it.next()
                        .ok_or_else(|| err("--net-faults needs a path"))?
                        .to_string(),
                )
            }
            "--cluster" => {
                let list = it
                    .next()
                    .ok_or_else(|| err("--cluster needs a comma-separated member list"))?;
                out.cluster = list
                    .split(',')
                    .map(str::trim)
                    .filter(|m| !m.is_empty())
                    .map(str::to_string)
                    .collect();
                if out.cluster.len() < 2 {
                    return Err(err("--cluster needs at least 2 members"));
                }
            }
            "--replication" => out.replication = parse_usize("--replication", it.next())?,
            "--heartbeat-ms" => {
                out.heartbeat_ms = parse_u64("--heartbeat-ms", it.next())?;
                if out.heartbeat_ms == 0 {
                    return Err(err("--heartbeat-ms must be at least 1"));
                }
            }
            "--heartbeat-miss-limit" => {
                out.heartbeat_miss_limit = parse_u32("--heartbeat-miss-limit", it.next())?;
                if out.heartbeat_miss_limit == 0 {
                    return Err(err("--heartbeat-miss-limit must be at least 1"));
                }
            }
            other => return Err(err(format!("unknown flag {other:?}"))),
        }
    }
    Ok(Command::Serve(out))
}

fn parse_submit(args: &[String]) -> Result<Command, ArgError> {
    let mut qasm: Option<String> = None;
    let mut out = SubmitArgs {
        qasm: String::new(),
        addr: DEFAULT_ADDR.to_string(),
        device: String::new(),
        policy: Policy::Baseline,
        shots: 4096,
        seed: 2019,
        expected: None,
        deadline_ms: None,
    };
    let mut it = args.iter().map(String::as_str);
    while let Some(tok) = it.next() {
        match tok {
            "--addr" => {
                out.addr = it
                    .next()
                    .ok_or_else(|| err("--addr needs HOST:PORT"))?
                    .to_string()
            }
            "--device" => {
                out.device = it
                    .next()
                    .ok_or_else(|| err("--device needs a name"))?
                    .to_string()
            }
            "--policy" => {
                out.policy = match it.next() {
                    Some("baseline") => Policy::Baseline,
                    Some("sim") => Policy::Sim,
                    Some("aim") => Policy::Aim,
                    other => return Err(err(format!("bad --policy {other:?}"))),
                }
            }
            "--shots" => out.shots = parse_u64("--shots", it.next())?,
            "--seed" => out.seed = parse_u64("--seed", it.next())?,
            "--expected" => {
                out.expected = Some(
                    it.next()
                        .ok_or_else(|| err("--expected needs a bit string"))?
                        .to_string(),
                )
            }
            "--deadline-ms" => out.deadline_ms = Some(parse_u64("--deadline-ms", it.next())?),
            flag if flag.starts_with("--") => return Err(err(format!("unknown flag {flag:?}"))),
            positional => {
                if qasm.is_some() {
                    return Err(err(format!("unexpected argument {positional:?}")));
                }
                qasm = Some(positional.to_string());
            }
        }
    }
    out.qasm = qasm.ok_or_else(|| err("submit requires a QASM file"))?;
    if out.device.is_empty() {
        return Err(err("submit requires --device"));
    }
    Ok(Command::Submit(out))
}

fn parse_svc(args: &[String]) -> Result<Command, ArgError> {
    let mut it = args.iter().map(String::as_str);
    let op_name = it.next().ok_or_else(|| {
        err("svc needs an operation: status, health, shutdown, set-window, characterize, cluster-map")
    })?;
    let mut addr = DEFAULT_ADDR.to_string();
    let op = match op_name {
        "status" | "shutdown" | "health" => {
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| err("--addr needs HOST:PORT"))?
                            .to_string()
                    }
                    other => return Err(err(format!("unknown flag {other:?}"))),
                }
            }
            match op_name {
                "status" => SvcOp::Status,
                "health" => SvcOp::Health,
                _ => SvcOp::Shutdown,
            }
        }
        "set-window" => {
            let window = parse_u64("set-window", it.next())?;
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| err("--addr needs HOST:PORT"))?
                            .to_string()
                    }
                    other => return Err(err(format!("unknown flag {other:?}"))),
                }
            }
            SvcOp::SetWindow { window }
        }
        "characterize" => {
            let mut device = String::new();
            let mut method = Method::Brute;
            let mut shots = 0u64;
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| err("--addr needs HOST:PORT"))?
                            .to_string()
                    }
                    "--device" => {
                        device = it
                            .next()
                            .ok_or_else(|| err("--device needs a name"))?
                            .to_string()
                    }
                    "--method" => {
                        method = match it.next() {
                            Some("brute") => Method::Brute,
                            Some("esct") => Method::Esct,
                            Some("awct") => Method::Awct,
                            other => return Err(err(format!("bad --method {other:?}"))),
                        }
                    }
                    "--shots" => shots = parse_u64("--shots", it.next())?,
                    other => return Err(err(format!("unknown flag {other:?}"))),
                }
            }
            if device.is_empty() {
                return Err(err("svc characterize requires --device"));
            }
            SvcOp::Characterize {
                device,
                method,
                shots,
            }
        }
        "cluster-map" => {
            let mut device = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| err("--addr needs HOST:PORT"))?
                            .to_string()
                    }
                    "--device" => {
                        device = Some(
                            it.next()
                                .ok_or_else(|| err("--device needs a name"))?
                                .to_string(),
                        )
                    }
                    other => return Err(err(format!("unknown flag {other:?}"))),
                }
            }
            SvcOp::ClusterMap { device }
        }
        other => return Err(err(format!("unknown svc operation {other:?}"))),
    };
    Ok(Command::Svc(SvcArgs { addr, op }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_help_and_devices() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("devices")).unwrap(), Command::Devices);
        assert!(parse(&argv("devices extra")).is_err());
    }

    #[test]
    fn parses_characterize() {
        let cmd = parse(&argv(
            "characterize --device ibmqx4 --method awct --shots 1000 --out p.rbms --seed 7 \
             --threads 3 --journal p.journal --resume --fault-plan chaos.plan",
        ))
        .unwrap();
        match cmd {
            Command::Characterize(a) => {
                assert_eq!(a.device, "ibmqx4");
                assert_eq!(a.method, Method::Awct);
                assert_eq!(a.shots, 1000);
                assert_eq!(a.out.as_deref(), Some("p.rbms"));
                assert_eq!(a.seed, 7);
                assert_eq!(a.threads, Some(3));
                assert_eq!(a.journal.as_deref(), Some("p.journal"));
                assert!(a.resume);
                assert_eq!(a.fault_plan.as_deref(), Some("chaos.plan"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn characterize_defaults() {
        let cmd = parse(&argv("characterize --device ibmqx2")).unwrap();
        match cmd {
            Command::Characterize(a) => {
                assert_eq!(a.method, Method::Brute);
                assert_eq!(a.shots, 8192);
                assert_eq!(a.out, None);
                assert_eq!(a.threads, None);
                assert_eq!(a.journal, None);
                assert!(!a.resume);
                assert_eq!(a.fault_plan, None);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_run_with_everything() {
        let cmd = parse(&argv(
            "run prog.qasm --device ibmq-melbourne --policy aim --shots 500 \
             --expected 10110 --profile p.rbms --route --threads 8",
        ))
        .unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.qasm, "prog.qasm");
                assert_eq!(a.policy, Policy::Aim);
                assert!(a.route);
                assert_eq!(a.expected.as_deref(), Some("10110"));
                assert_eq!(a.threads, Some(8));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn run_threads_default_is_auto() {
        let cmd = parse(&argv("run prog.qasm --device ibmqx2")).unwrap();
        match cmd {
            Command::Run(a) => assert_eq!(a.threads, None),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        match parse(&argv("serve")).unwrap() {
            Command::Serve(a) => {
                assert_eq!(a.addr, DEFAULT_ADDR);
                assert_eq!(a.workers, 2);
                assert_eq!(a.queue, 32);
                assert!(a.event_loop, "event loop is the default front end");
                assert_eq!(a.shards, 0, "shard count defaults to auto");
                assert_eq!(a.profile_shots, 2048);
                assert_eq!(a.profile_dir, None);
                assert_eq!(a.idle_timeout_ms, 30_000);
                assert_eq!(a.retry_limit, 2);
                assert_eq!(a.retry_backoff_ms, 25);
                assert_eq!(a.breaker_threshold, 3);
                assert_eq!(a.breaker_cooldown, 4);
                assert_eq!(a.fault_plan, None);
                assert_eq!(a.net_faults, None);
                assert!(a.cluster.is_empty(), "single-node is the default");
                assert_eq!(a.replication, 1);
                assert_eq!(a.heartbeat_ms, 1000);
                assert_eq!(a.heartbeat_miss_limit, 3);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv(
            "serve --addr 127.0.0.1:0 --workers 4 --queue 8 --event-loop off \
             --shards 3 --exec-threads 2 \
             --profile-shots 512 --profile-seed 9 --drift-amplitude 0.1 \
             --drift-threshold 0.02 --profile-dir cache --idle-timeout-ms 500 \
             --retry-limit 1 --retry-backoff-ms 0 --breaker-threshold 2 \
             --breaker-cooldown 3 --fault-plan chaos.plan --net-faults net.plan",
        ))
        .unwrap()
        {
            Command::Serve(a) => {
                assert_eq!(a.addr, "127.0.0.1:0");
                assert_eq!(a.workers, 4);
                assert_eq!(a.queue, 8);
                assert!(!a.event_loop, "--event-loop off selects the baseline");
                assert_eq!(a.shards, 3);
                assert_eq!(a.exec_threads, 2);
                assert_eq!(a.profile_shots, 512);
                assert_eq!(a.profile_seed, 9);
                assert_eq!(a.drift_amplitude, 0.1);
                assert_eq!(a.drift_threshold, 0.02);
                assert_eq!(a.profile_dir.as_deref(), Some("cache"));
                assert_eq!(a.idle_timeout_ms, 500);
                assert_eq!(a.retry_limit, 1);
                assert_eq!(a.retry_backoff_ms, 0);
                assert_eq!(a.breaker_threshold, 2);
                assert_eq!(a.breaker_cooldown, 3);
                assert_eq!(a.fault_plan.as_deref(), Some("chaos.plan"));
                assert_eq!(a.net_faults.as_deref(), Some("net.plan"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_serve_cluster_flags() {
        match parse(&argv(
            "serve --addr 127.0.0.1:7001 --profile-dir cache \
             --cluster 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
             --replication 2 --heartbeat-ms 100 --heartbeat-miss-limit 2",
        ))
        .unwrap()
        {
            Command::Serve(a) => {
                assert_eq!(
                    a.cluster,
                    vec!["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]
                );
                assert_eq!(a.replication, 2);
                assert_eq!(a.heartbeat_ms, 100);
                assert_eq!(a.heartbeat_miss_limit, 2);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_submit() {
        match parse(&argv(
            "submit prog.qasm --device ibmqx4 --addr 127.0.0.1:9999 --policy aim \
             --shots 1000 --seed 3 --expected 11111 --deadline-ms 250",
        ))
        .unwrap()
        {
            Command::Submit(a) => {
                assert_eq!(a.qasm, "prog.qasm");
                assert_eq!(a.device, "ibmqx4");
                assert_eq!(a.addr, "127.0.0.1:9999");
                assert_eq!(a.policy, Policy::Aim);
                assert_eq!(a.shots, 1000);
                assert_eq!(a.seed, 3);
                assert_eq!(a.expected.as_deref(), Some("11111"));
                assert_eq!(a.deadline_ms, Some(250));
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("submit p.qasm --device ibmqx2")).unwrap() {
            Command::Submit(a) => {
                assert_eq!(a.addr, DEFAULT_ADDR);
                assert_eq!(a.policy, Policy::Baseline);
                assert_eq!(a.shots, 4096);
                assert_eq!(a.deadline_ms, None);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_svc_operations() {
        match parse(&argv("svc status")).unwrap() {
            Command::Svc(a) => {
                assert_eq!(a.addr, DEFAULT_ADDR);
                assert_eq!(a.op, SvcOp::Status);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("svc shutdown --addr 127.0.0.1:1234")).unwrap() {
            Command::Svc(a) => {
                assert_eq!(a.addr, "127.0.0.1:1234");
                assert_eq!(a.op, SvcOp::Shutdown);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("svc health --addr 127.0.0.1:1234")).unwrap() {
            Command::Svc(a) => {
                assert_eq!(a.addr, "127.0.0.1:1234");
                assert_eq!(a.op, SvcOp::Health);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("svc set-window 3")).unwrap() {
            Command::Svc(a) => assert_eq!(a.op, SvcOp::SetWindow { window: 3 }),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv(
            "svc characterize --device ibmqx4 --method awct --shots 256",
        ))
        .unwrap()
        {
            Command::Svc(a) => assert_eq!(
                a.op,
                SvcOp::Characterize {
                    device: "ibmqx4".into(),
                    method: Method::Awct,
                    shots: 256,
                }
            ),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("svc cluster-map")).unwrap() {
            Command::Svc(a) => {
                assert_eq!(a.addr, DEFAULT_ADDR);
                assert_eq!(a.op, SvcOp::ClusterMap { device: None });
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv(
            "svc cluster-map --device ibmqx4 --addr 127.0.0.1:7002",
        ))
        .unwrap()
        {
            Command::Svc(a) => {
                assert_eq!(a.addr, "127.0.0.1:7002");
                assert_eq!(
                    a.op,
                    SvcOp::ClusterMap {
                        device: Some("ibmqx4".into())
                    }
                );
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn service_error_messages_are_specific() {
        let cases = [
            ("serve --workers 0", "--workers must be at least 1"),
            ("serve --drift-amplitude -1", "non-negative"),
            ("serve --bogus", "unknown flag"),
            (
                "serve --breaker-threshold 0",
                "--breaker-threshold must be at least 1",
            ),
            ("serve --retry-limit no", "--retry-limit needs an integer"),
            ("serve --fault-plan", "--fault-plan needs a path"),
            ("serve --net-faults", "--net-faults needs a path"),
            (
                "submit p.qasm --device x --deadline-ms no",
                "--deadline-ms needs an integer",
            ),
            ("submit --device x", "requires a QASM file"),
            ("submit p.qasm", "requires --device"),
            ("svc", "needs an operation"),
            ("svc reboot", "unknown svc operation"),
            ("svc set-window", "set-window needs a value"),
            ("svc set-window nope", "set-window needs an integer"),
            ("svc characterize", "requires --device"),
            ("svc characterize --device x --method nope", "bad --method"),
            ("svc cluster-map --device", "--device needs a name"),
            ("svc cluster-map --bogus", "unknown flag"),
            (
                "serve --cluster",
                "--cluster needs a comma-separated member list",
            ),
            (
                "serve --cluster 127.0.0.1:7001",
                "--cluster needs at least 2 members",
            ),
            ("serve --replication 0", "--replication must be at least 1"),
            (
                "serve --heartbeat-ms 0",
                "--heartbeat-ms must be at least 1",
            ),
            (
                "serve --heartbeat-miss-limit 0",
                "--heartbeat-miss-limit must be at least 1",
            ),
        ];
        for (input, expect) in cases {
            let e = parse(&argv(input)).unwrap_err().to_string();
            assert!(e.contains(expect), "{input:?}: {e}");
        }
    }

    #[test]
    fn error_messages_are_specific() {
        let cases = [
            ("characterize", "requires --device"),
            ("characterize --device", "--device needs a name"),
            (
                "characterize --device x --shots abc",
                "--shots needs an integer",
            ),
            ("characterize --device x --method nope", "bad --method"),
            (
                "characterize --device x --threads 0",
                "--threads must be at least 1",
            ),
            (
                "characterize --device x --threads no",
                "--threads needs an integer",
            ),
            (
                "characterize --device x --journal",
                "--journal needs a path",
            ),
            (
                "characterize --device x --resume",
                "--resume needs --journal",
            ),
            (
                "characterize --device x --fault-plan",
                "--fault-plan needs a path",
            ),
            ("run --device x", "requires a QASM file"),
            ("run a.qasm b.qasm --device x", "unexpected argument"),
            ("run a.qasm --device x --policy nope", "bad --policy"),
            (
                "run a.qasm --device x --threads 0",
                "--threads must be at least 1",
            ),
            ("nonsense", "unknown command"),
        ];
        for (input, expect) in cases {
            let e = parse(&argv(input)).unwrap_err().to_string();
            assert!(e.contains(expect), "{input:?}: {e}");
        }
    }
}
