//! Hand-rolled argument parsing for the `invmeas` CLI.
//!
//! Kept dependency-free (no clap) per the workspace's offline-dependency
//! policy; the grammar is small enough that explicit parsing is clearer
//! than a derive anyway.

use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the built-in device models.
    Devices,
    /// Characterize a device's RBMS.
    Characterize(CharacterizeArgs),
    /// Inspect a saved profile.
    ProfileInfo {
        /// Path to the profile file.
        path: String,
    },
    /// Run a QASM program under a policy.
    Run(RunArgs),
    /// Print usage.
    Help,
}

/// Which characterization technique to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Prepare and measure every basis state.
    Brute,
    /// Equal-superposition characterization.
    Esct,
    /// Sliding-window characterization.
    Awct,
}

/// Which measurement policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Standard measurement.
    Baseline,
    /// Static Invert-and-Measure (four strings).
    Sim,
    /// Adaptive Invert-and-Measure.
    Aim,
}

/// Arguments to `characterize`.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeArgs {
    /// Device name (`ibmqx2`, `ibmqx4`, `ibmq-melbourne`, `ideal-N`).
    pub device: String,
    /// Technique.
    pub method: Method,
    /// Trial budget (meaning depends on the technique).
    pub shots: u64,
    /// Optional output profile path.
    pub out: Option<String>,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for batched sweeps (`None` = all available cores).
    pub threads: Option<usize>,
}

/// Arguments to `run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Path to the OpenQASM 2.0 program.
    pub qasm: String,
    /// Device name.
    pub device: String,
    /// Policy.
    pub policy: Policy,
    /// Trial budget.
    pub shots: u64,
    /// Expected correct output (enables metrics).
    pub expected: Option<String>,
    /// Pre-measured profile to load for AIM.
    pub profile: Option<String>,
    /// Route the logical circuit onto the device first.
    pub route: bool,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for batched sweeps (`None` = all available cores).
    pub threads: Option<usize>,
}

/// Error produced while parsing arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn err(msg: impl Into<String>) -> ArgError {
    ArgError(msg.into())
}

/// The usage text.
pub const USAGE: &str = "\
invmeas — Invert-and-Measure command line

USAGE:
  invmeas devices
  invmeas characterize --device <NAME> [--method brute|esct|awct]
                       [--shots N] [--out FILE] [--seed N] [--threads N]
  invmeas profile-info <FILE>
  invmeas run <FILE.qasm> --device <NAME> [--policy baseline|sim|aim]
              [--shots N] [--expected BITS] [--profile FILE] [--route]
              [--seed N] [--threads N]

DEVICES: ibmqx2, ibmqx4, ibmq-melbourne, ideal-N (e.g. ideal-5)

--threads controls the worker pool for batched circuit sweeps
(characterization states/windows, SIM groups, AIM targeted runs); the
default uses every available core. Results are identical for any value.
";

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns an [`ArgError`] describing the first problem encountered.
pub fn parse(args: &[String]) -> Result<Command, ArgError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("-h") | Some("--help") => Ok(Command::Help),
        Some("devices") => {
            if it.next().is_some() {
                return Err(err("devices takes no arguments"));
            }
            Ok(Command::Devices)
        }
        Some("profile-info") => {
            let path = it.next().ok_or_else(|| err("profile-info needs a file"))?;
            if it.next().is_some() {
                return Err(err("profile-info takes one argument"));
            }
            Ok(Command::ProfileInfo {
                path: path.to_string(),
            })
        }
        Some("characterize") => parse_characterize(&args[1..]),
        Some("run") => parse_run(&args[1..]),
        Some(other) => Err(err(format!("unknown command {other:?}"))),
    }
}

fn parse_u64(flag: &str, value: Option<&str>) -> Result<u64, ArgError> {
    value
        .ok_or_else(|| err(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| err(format!("{flag} needs an integer")))
}

fn parse_threads(value: Option<&str>) -> Result<usize, ArgError> {
    let n: usize = value
        .ok_or_else(|| err("--threads needs a value"))?
        .parse()
        .map_err(|_| err("--threads needs an integer"))?;
    if n == 0 {
        return Err(err("--threads must be at least 1"));
    }
    Ok(n)
}

fn parse_characterize(args: &[String]) -> Result<Command, ArgError> {
    let mut out = CharacterizeArgs {
        device: String::new(),
        method: Method::Brute,
        shots: 8192,
        out: None,
        seed: 2019,
        threads: None,
    };
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        match flag {
            "--device" => {
                out.device = it
                    .next()
                    .ok_or_else(|| err("--device needs a name"))?
                    .to_string()
            }
            "--method" => {
                out.method = match it.next() {
                    Some("brute") => Method::Brute,
                    Some("esct") => Method::Esct,
                    Some("awct") => Method::Awct,
                    other => return Err(err(format!("bad --method {other:?}"))),
                }
            }
            "--shots" => out.shots = parse_u64("--shots", it.next())?,
            "--seed" => out.seed = parse_u64("--seed", it.next())?,
            "--threads" => out.threads = Some(parse_threads(it.next())?),
            "--out" => {
                out.out = Some(
                    it.next()
                        .ok_or_else(|| err("--out needs a path"))?
                        .to_string(),
                )
            }
            other => return Err(err(format!("unknown flag {other:?}"))),
        }
    }
    if out.device.is_empty() {
        return Err(err("characterize requires --device"));
    }
    Ok(Command::Characterize(out))
}

fn parse_run(args: &[String]) -> Result<Command, ArgError> {
    let mut qasm: Option<String> = None;
    let mut out = RunArgs {
        qasm: String::new(),
        device: String::new(),
        policy: Policy::Baseline,
        shots: 8192,
        expected: None,
        profile: None,
        route: false,
        seed: 2019,
        threads: None,
    };
    let mut it = args.iter().map(String::as_str).peekable();
    while let Some(tok) = it.next() {
        match tok {
            "--device" => {
                out.device = it
                    .next()
                    .ok_or_else(|| err("--device needs a name"))?
                    .to_string()
            }
            "--policy" => {
                out.policy = match it.next() {
                    Some("baseline") => Policy::Baseline,
                    Some("sim") => Policy::Sim,
                    Some("aim") => Policy::Aim,
                    other => return Err(err(format!("bad --policy {other:?}"))),
                }
            }
            "--shots" => out.shots = parse_u64("--shots", it.next())?,
            "--seed" => out.seed = parse_u64("--seed", it.next())?,
            "--threads" => out.threads = Some(parse_threads(it.next())?),
            "--expected" => {
                out.expected = Some(
                    it.next()
                        .ok_or_else(|| err("--expected needs a bit string"))?
                        .to_string(),
                )
            }
            "--profile" => {
                out.profile = Some(
                    it.next()
                        .ok_or_else(|| err("--profile needs a path"))?
                        .to_string(),
                )
            }
            "--route" => out.route = true,
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag {flag:?}")))
            }
            positional => {
                if qasm.is_some() {
                    return Err(err(format!("unexpected argument {positional:?}")));
                }
                qasm = Some(positional.to_string());
            }
        }
    }
    out.qasm = qasm.ok_or_else(|| err("run requires a QASM file"))?;
    if out.device.is_empty() {
        return Err(err("run requires --device"));
    }
    Ok(Command::Run(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_help_and_devices() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("devices")).unwrap(), Command::Devices);
        assert!(parse(&argv("devices extra")).is_err());
    }

    #[test]
    fn parses_characterize() {
        let cmd = parse(&argv(
            "characterize --device ibmqx4 --method awct --shots 1000 --out p.rbms --seed 7 \
             --threads 3",
        ))
        .unwrap();
        match cmd {
            Command::Characterize(a) => {
                assert_eq!(a.device, "ibmqx4");
                assert_eq!(a.method, Method::Awct);
                assert_eq!(a.shots, 1000);
                assert_eq!(a.out.as_deref(), Some("p.rbms"));
                assert_eq!(a.seed, 7);
                assert_eq!(a.threads, Some(3));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn characterize_defaults() {
        let cmd = parse(&argv("characterize --device ibmqx2")).unwrap();
        match cmd {
            Command::Characterize(a) => {
                assert_eq!(a.method, Method::Brute);
                assert_eq!(a.shots, 8192);
                assert_eq!(a.out, None);
                assert_eq!(a.threads, None);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_run_with_everything() {
        let cmd = parse(&argv(
            "run prog.qasm --device ibmq-melbourne --policy aim --shots 500 \
             --expected 10110 --profile p.rbms --route --threads 8",
        ))
        .unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.qasm, "prog.qasm");
                assert_eq!(a.policy, Policy::Aim);
                assert!(a.route);
                assert_eq!(a.expected.as_deref(), Some("10110"));
                assert_eq!(a.threads, Some(8));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn run_threads_default_is_auto() {
        let cmd = parse(&argv("run prog.qasm --device ibmqx2")).unwrap();
        match cmd {
            Command::Run(a) => assert_eq!(a.threads, None),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_specific() {
        let cases = [
            ("characterize", "requires --device"),
            ("characterize --device", "--device needs a name"),
            ("characterize --device x --shots abc", "--shots needs an integer"),
            ("characterize --device x --method nope", "bad --method"),
            ("characterize --device x --threads 0", "--threads must be at least 1"),
            ("characterize --device x --threads no", "--threads needs an integer"),
            ("run --device x", "requires a QASM file"),
            ("run a.qasm b.qasm --device x", "unexpected argument"),
            ("run a.qasm --device x --policy nope", "bad --policy"),
            ("run a.qasm --device x --threads 0", "--threads must be at least 1"),
            ("nonsense", "unknown command"),
        ];
        for (input, expect) in cases {
            let e = parse(&argv(input)).unwrap_err().to_string();
            assert!(e.contains(expect), "{input:?}: {e}");
        }
    }
}
