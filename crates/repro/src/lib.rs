//! # repro — the table/figure regeneration harness
//!
//! Every evaluation artifact of the paper is an experiment module under
//! [`experiments`]; each produces an [`ExperimentOutput`] of rendered
//! tables, and the `repro` binary prints them:
//!
//! ```sh
//! cargo run --release -p repro -- list         # what can be reproduced
//! cargo run --release -p repro -- fig13        # one artifact
//! cargo run --release -p repro -- all          # everything (EXPERIMENTS.md)
//! cargo run --release -p repro -- fig10 --scale 0.25   # quarter trials
//! ```
//!
//! `--scale` multiplies every trial count (1.0 = the paper's shot budgets);
//! the integration tests run at low scale for speed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;

use std::fmt;

/// The rendered result of one reproduction experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Stable identifier (`fig1`, `table5`, …) matching DESIGN.md's index.
    pub id: &'static str,
    /// Human-readable title including the paper artifact it regenerates.
    pub title: String,
    /// Named sections of rendered text (tables, notes).
    pub sections: Vec<(String, String)>,
}

impl ExperimentOutput {
    /// Creates an output with no sections yet.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        ExperimentOutput {
            id,
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Appends a named section.
    pub fn section(&mut self, name: impl Into<String>, body: impl fmt::Display) -> &mut Self {
        self.sections.push((name.into(), body.to_string()));
        self
    }

    /// Finds a section body by name (used by the smoke tests).
    pub fn find(&self, name: &str) -> Option<&str> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_str())
    }
}

impl fmt::Display for ExperimentOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== [{}] {} ====", self.id, self.title)?;
        for (name, body) in &self.sections {
            writeln!(f, "\n-- {name} --")?;
            writeln!(f, "{body}")?;
        }
        Ok(())
    }
}

/// Shared experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Multiplier on every trial count (1.0 = paper budgets).
    pub scale: f64,
    /// Base RNG seed; every experiment derives its own stream from it.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 1.0,
            seed: 0x5eed_2019,
        }
    }
}

impl Config {
    /// A configuration with a reduced trial budget for fast test runs.
    pub fn quick() -> Self {
        Config {
            scale: 0.05,
            ..Config::default()
        }
    }

    /// Scales a paper shot budget, keeping at least 64 trials so metric
    /// denominators stay meaningful.
    pub fn shots(&self, paper_shots: u64) -> u64 {
        (((paper_shots as f64) * self.scale).round() as u64).max(64)
    }
}
