//! Figures 7 and 8: the worked examples explaining how SIM's merge
//! recovers answers and why more inversion strings help.

use crate::experiments::rng_for;
use crate::{Config, ExperimentOutput};
use invmeas::{Baseline, InversionString, MeasurementPolicy, StaticInvertMeasure};
use qmetrics::{fmt_prob, Table};
use qnoise::{FlipPair, GateNoise, NoisyExecutor, TensorReadout};
use qsim::{BitString, Circuit};

/// A strongly 1-biased three-qubit toy machine for the Figure 7 demo. The
/// 1 -> 0 error is set past 50 % (the worst-case regime a Table 1 31 %-mean
/// qubit reaches once relaxation over a slow readout is included) so the
/// standard mode genuinely masks the answer, as in the paper's panels.
fn toy_executor(n: usize) -> NoisyExecutor {
    let readout = TensorReadout::uniform(n, FlipPair::new(0.05, 0.58));
    NoisyExecutor::new(
        qnoise::CorrelatedReadout::from_tensor(readout),
        GateNoise::ideal(n),
    )
}

/// Figure 7: running a 3-bit program whose answer is `101` in standard and
/// inverted modes, then merging. The standard mode masks the answer behind
/// a lower-weight state; the merge restores it to the top.
pub fn fig7(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "fig7");
    let shots = cfg.shots(16_000);
    let exec = toy_executor(3);
    let answer: BitString = "101".parse().expect("valid");
    let circuit = Circuit::basis_state_preparation(answer);

    let sim = StaticInvertMeasure::two_mode(3);
    let (groups, merged) = sim.execute_detailed(&circuit, shots, &exec, &mut rng);

    let mut out = ExperimentOutput::new(
        "fig7",
        "SIM worked example: standard + inverted modes merged (paper Figure 7)",
    );
    let render = |log: &qsim::Counts| {
        let mut t = Table::new(&["output", "probability"]);
        for (s, n) in log.ranked().into_iter().take(5) {
            t.row_owned(vec![s.to_string(), fmt_prob(n as f64 / log.total() as f64)]);
        }
        t
    };
    out.section(
        format!(
            "A: standard mode (PST {})",
            fmt_prob(groups[0].frequency(&answer))
        ),
        render(&groups[0]),
    );
    out.section(
        format!(
            "C: inverted mode, post-corrected (PST {})",
            fmt_prob(groups[1].frequency(&answer))
        ),
        render(&groups[1]),
    );
    out.section(
        format!("D: merged (PST {})", fmt_prob(merged.frequency(&answer))),
        render(&merged),
    );
    out.section(
        "paper reference",
        "standard-mode PST 0.35 with a stronger wrong answer; merged PST 0.55 \
         with the correct answer on top",
    );
    out
}

/// Figure 8: measuring the state `0101`, which two-mode SIM barely helps
/// (its inverse `1010` is no stronger), with one, two, and four inversion
/// strings. The four-string set covers the moderate-Hamming-weight case.
pub fn fig8(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "fig8");
    let shots = cfg.shots(16_000);
    // The paper's Figure 8 scenario — BMS(0000)=0.9, BMS(1111)=0.3,
    // BMS(0101)=0.40, BMS(1010)=0.45 — cannot be realized by ANY
    // independent per-qubit channel (the four products are inconsistent:
    // BMS(0101)·BMS(1010) must equal BMS(0000)·BMS(1111) for a tensor
    // channel, but 0.4·0.45 != 0.9·0.3). It requires correlated readout;
    // this toy reproduces it with excited-neighbour crosstalk.
    let readout = qnoise::CorrelatedReadout::new(
        TensorReadout::uniform(4, FlipPair::new(0.025, 0.13)),
        vec![
            qnoise::Crosstalk::new(0, 1, 0.25),
            qnoise::Crosstalk::new(2, 3, 0.25),
            qnoise::Crosstalk::new(1, 2, 0.20),
            qnoise::Crosstalk::new(3, 0, 0.20),
        ],
    );
    let exec = NoisyExecutor::new(readout.clone(), GateNoise::ideal(4));
    let answer: BitString = "0101".parse().expect("valid");
    let circuit = Circuit::basis_state_preparation(answer);
    let mut strengths = Table::new(&["physical state", "exact BMS"]);
    for s in [
        answer,
        answer.inverted(),
        "0000".parse().expect("valid"),
        "1111".parse().expect("valid"),
    ] {
        strengths.row_owned(vec![
            s.to_string(),
            fmt_prob(qnoise::ReadoutModel::success_probability(&readout, s)),
        ]);
    }

    let mut out = ExperimentOutput::new(
        "fig8",
        "SIM with four inversion strings on state 0101 (paper Figure 8)",
    );
    out.section("why two modes are not enough here", strengths);

    let mut t = Table::new(&["policy", "inversion strings", "PST of 0101"]);
    let baseline = Baseline.execute(&circuit, shots, &exec, &mut rng);
    t.row_owned(vec![
        "baseline".into(),
        "none".into(),
        fmt_prob(baseline.frequency(&answer)),
    ]);
    for sim in [
        StaticInvertMeasure::two_mode(4),
        StaticInvertMeasure::four_mode(4),
    ] {
        let log = sim.execute(&circuit, shots, &exec, &mut rng);
        let strings: Vec<String> = sim.strings().iter().map(|i| i.mask().to_string()).collect();
        t.row_owned(vec![
            sim.name(),
            strings.join(","),
            fmt_prob(log.frequency(&answer)),
        ]);
    }
    // The ideal four-string average for reference.
    let avg: f64 = InversionString::sim_four(4)
        .iter()
        .map(|inv| qnoise::ReadoutModel::success_probability(&readout, inv.measured_state(answer)))
        .sum::<f64>()
        / 4.0;
    out.section("measured PST per mode count", t);
    out.section(
        "expected four-mode average",
        format!("mean BMS over the four measured bases: {}", fmt_prob(avg)),
    );
    out.section(
        "paper reference",
        "averaging over four modes yields ~0.51 for a state whose direct and \
         fully inverted BMS are 0.40 and 0.45",
    );
    out
}
