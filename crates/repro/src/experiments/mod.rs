//! One module per paper artifact. See DESIGN.md §4 for the full index.

pub mod ablations;
pub mod characterization;
pub mod extensions;
pub mod ghz;
pub mod machines;
pub mod qaoa_study;
pub mod sim_examples;
pub mod suite_eval;
pub mod sweeps;

use crate::{Config, ExperimentOutput};

/// Every reproducible artifact: `(id, summary)`.
pub const ALL_EXPERIMENTS: &[(&str, &str)] = &[
    ("fig1", "PST of 00000 / 11111 / inverted 11111 on IBM-Q5"),
    ("table1", "min/avg/max measurement error per machine"),
    (
        "fig3",
        "BV-2 output distributions: ideal, successful, masked",
    ),
    (
        "fig4",
        "relative BMS for all 32 ibmqx2 states (direct vs ESCT)",
    ),
    (
        "fig5",
        "relative BMS vs Hamming weight, 10 qubits on melbourne",
    ),
    ("fig6", "GHZ-5 output distribution, ideal vs NISQ"),
    ("table2", "QAOA graphs A-E: PST/IST/ROCA vs output weight"),
    ("table3", "benchmark characteristics"),
    ("table4", "machine configurations"),
    (
        "fig7",
        "SIM two-mode worked example (merge recovers answer)",
    ),
    ("fig8", "SIM four-string example on state 0101"),
    ("fig9", "QAOA graph-D distribution: baseline vs SIM (ROCA)"),
    (
        "fig10",
        "SIM PST normalized to baseline, all benchmarks/machines",
    ),
    (
        "fig11",
        "ibmqx4 arbitrary bias: per-state PST and BV-4 PST per key",
    ),
    ("fig13", "BV all 32 keys: baseline vs SIM vs AIM on ibmqx4"),
    ("table5", "Inference Strength for baseline/SIM/AIM"),
    (
        "fig14",
        "PST improvement of SIM and AIM normalized to baseline",
    ),
    ("fig15", "RBMS validation: direct vs ESCT vs AWCT on ibmqx4"),
    (
        "drift",
        "EXTENSION: bias repeatability across calibration windows (6.1)",
    ),
    (
        "mapping",
        "EXTENSION: variability-aware allocation + SWAP routing (4.3)",
    ),
    (
        "unfolding",
        "EXTENSION: invert-and-measure vs matrix unfolding (related work)",
    ),
    (
        "ablations",
        "EXTENSION: design-choice ablation studies (DESIGN.md 5)",
    ),
];

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns the unknown id back as `Err` so the CLI can report it.
pub fn run(id: &str, cfg: &Config) -> Result<Vec<ExperimentOutput>, String> {
    let out = match id {
        "fig1" => vec![characterization::fig1(cfg)],
        "table1" => vec![machines::table1(cfg)],
        "fig3" => vec![sweeps::fig3(cfg)],
        "fig4" => vec![characterization::fig4(cfg)],
        "fig5" => vec![characterization::fig5(cfg)],
        "fig6" => vec![ghz::fig6(cfg)],
        "table2" => vec![qaoa_study::table2(cfg)],
        "table3" => vec![machines::table3(cfg)],
        "table4" => vec![machines::table4(cfg)],
        "fig7" => vec![sim_examples::fig7(cfg)],
        "fig8" => vec![sim_examples::fig8(cfg)],
        "fig9" => vec![qaoa_study::fig9(cfg)],
        "fig10" => vec![suite_eval::fig10(&suite_eval::evaluate(cfg))],
        "fig11" => vec![sweeps::fig11(cfg)],
        "fig13" => vec![sweeps::fig13(cfg)],
        "table5" => vec![suite_eval::table5(&suite_eval::evaluate(cfg))],
        "fig14" => vec![suite_eval::fig14(&suite_eval::evaluate(cfg))],
        "fig15" => vec![characterization::fig15(cfg)],
        "drift" => vec![extensions::drift(cfg)],
        "mapping" => vec![extensions::mapping(cfg)],
        "unfolding" => vec![extensions::unfolding(cfg)],
        "ablations" => vec![ablations::ablations(cfg)],
        "all" => return Ok(run_all(cfg)),
        other => return Err(other.to_string()),
    };
    Ok(out)
}

/// Runs every experiment, evaluating the shared benchmark suite once.
pub fn run_all(cfg: &Config) -> Vec<ExperimentOutput> {
    let mut outputs = vec![
        characterization::fig1(cfg),
        machines::table1(cfg),
        sweeps::fig3(cfg),
        characterization::fig4(cfg),
        characterization::fig5(cfg),
        ghz::fig6(cfg),
        qaoa_study::table2(cfg),
        machines::table3(cfg),
        machines::table4(cfg),
        sim_examples::fig7(cfg),
        sim_examples::fig8(cfg),
        qaoa_study::fig9(cfg),
    ];
    let suite = suite_eval::evaluate(cfg);
    outputs.push(suite_eval::fig10(&suite));
    outputs.push(sweeps::fig11(cfg));
    outputs.push(sweeps::fig13(cfg));
    outputs.push(suite_eval::table5(&suite));
    outputs.push(suite_eval::fig14(&suite));
    outputs.push(characterization::fig15(cfg));
    outputs.push(extensions::drift(cfg));
    outputs.push(extensions::mapping(cfg));
    outputs.push(extensions::unfolding(cfg));
    outputs.push(ablations::ablations(cfg));
    outputs
}

/// Derives a deterministic per-experiment RNG from the base seed so
/// experiments are independent of execution order.
pub(crate) fn rng_for(cfg: &Config, tag: &str) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tag.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    rand::rngs::StdRng::seed_from_u64(cfg.seed ^ h)
}
