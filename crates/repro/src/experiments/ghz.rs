//! Figure 6: measurement bias on the maximally entangled GHZ state.

use crate::experiments::rng_for;
use crate::{Config, ExperimentOutput};
use qmetrics::{fmt_prob, Table};
use qnoise::{DeviceModel, Executor, NoisyExecutor};
use qsim::BitString;
use qworkloads::ghz_circuit;

/// Figure 6: GHZ-5 prepared and measured on ibmq-melbourne. Ideally the
/// all-zeros and all-ones states each appear with probability 0.5; under
/// biased measurement the all-ones branch collapses several-fold.
pub fn fig6(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "fig6");
    let shots = cfg.shots(16_000);
    let dev = DeviceModel::ibmq_melbourne().best_qubits_subdevice(5);
    let exec = NoisyExecutor::from_device(&dev);
    let circuit = ghz_circuit(5);
    let log = exec.run(&circuit, shots, &mut rng);

    let zeros = BitString::zeros(5);
    let ones = BitString::ones(5);
    let p0 = log.frequency(&zeros);
    let p1 = log.frequency(&ones);

    let mut out = ExperimentOutput::new(
        "fig6",
        "GHZ-5 output distribution on melbourne (paper Figure 6)",
    );
    let mut t = Table::new(&["state", "weight", "ideal", "measured"]);
    for s in BitString::all_by_hamming_weight(5) {
        let f = log.frequency(&s);
        if f < 0.005 && s != zeros && s != ones {
            continue; // keep the table to the visible bars of the figure
        }
        let ideal = if s == zeros || s == ones { 0.5 } else { 0.0 };
        t.row_owned(vec![
            s.to_string(),
            s.hamming_weight().to_string(),
            fmt_prob(ideal),
            fmt_prob(f),
        ]);
    }
    out.section("distribution (states above 0.5% shown)", t);
    out.section(
        "asymmetry",
        format!(
            "P(00000) = {} vs P(11111) = {}  ->  errors hit the all-ones branch {:.1}x harder",
            fmt_prob(p0),
            fmt_prob(p1),
            (0.5 - p1) / (0.5 - p0).max(1e-6)
        ),
    );
    out.section(
        "paper reference",
        "P(00000) drops 0.5 -> 0.4 while P(11111) drops 0.5 -> 0.1 (4x)",
    );
    out
}
