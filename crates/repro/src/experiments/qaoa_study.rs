//! Table 2 and Figure 9: how measurement bias degrades QAOA, and how SIM
//! repairs it.

use crate::experiments::rng_for;
use crate::{Config, ExperimentOutput};
use invmeas::{Baseline, MeasurementPolicy, StaticInvertMeasure};
use qmetrics::{fmt_prob, fmt_ratio, ReliabilityReport, Table};
use qnoise::{DeviceModel, NoisyExecutor};
use qworkloads::table2_benchmarks;

/// Table 2: QAOA max-cut for five gate-identical 6-node instances whose
/// optimal outputs have increasing Hamming weight, on ibmq-melbourne. PST,
/// IST, and ROCA all degrade as the answer's weight grows.
pub fn table2(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "table2");
    let shots = cfg.shots(32_000);
    let dev = DeviceModel::ibmq_melbourne().subdevice(&[2, 4, 5, 8, 9, 11]);
    let exec = NoisyExecutor::from_device(&dev);

    let mut out = ExperimentOutput::new(
        "table2",
        "Impact of measurement bias on QAOA (paper Table 2)",
    );
    let mut t = Table::new(&["graph", "optimal output", "weight", "PST", "IST", "ROCA"]);
    for bench in table2_benchmarks(2) {
        let target = bench.correct().outputs()[0];
        let log = Baseline.execute(bench.circuit(), shots, &exec, &mut rng);
        let r = ReliabilityReport::evaluate(&log, bench.correct());
        t.row_owned(vec![
            bench.name().to_string(),
            target.to_string(),
            target.hamming_weight().to_string(),
            fmt_prob(r.pst),
            fmt_ratio(r.ist),
            r.roca.map(|x| x.to_string()).unwrap_or_else(|| "-".into()),
        ]);
    }
    out.section(
        "baseline reliability per graph (gate-identical instances)",
        t,
    );
    out.section(
        "paper reference",
        "PST 6.5% -> 1.5%, IST 1.3 -> 0.23, ROCA 1 -> 24 as weight rises 1 -> 4",
    );
    out
}

/// Figure 9: the full output distribution of QAOA on graph D (output
/// 101011) under the baseline and under SIM. SIM attenuates the
/// low-Hamming-weight false positives and improves the correct answer's
/// rank (paper: 14 to 6).
pub fn fig9(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "fig9");
    let shots = cfg.shots(16_000);
    let dev = DeviceModel::ibmq_melbourne().subdevice(&[2, 4, 5, 8, 9, 11]);
    let exec = NoisyExecutor::from_device(&dev);
    let bench = qworkloads::table2_benchmarks(2)
        .into_iter()
        .nth(3)
        .expect("graph D is the fourth Table 2 instance");

    let base_log = Baseline.execute(bench.circuit(), shots, &exec, &mut rng);
    let sim_log =
        StaticInvertMeasure::four_mode(6).execute(bench.circuit(), shots, &exec, &mut rng);

    let mut out = ExperimentOutput::new(
        "fig9",
        "QAOA graph-D output distribution: baseline vs SIM (paper Figure 9)",
    );
    for (name, log) in [("baseline", &base_log), ("SIM", &sim_log)] {
        let r = ReliabilityReport::evaluate(log, bench.correct());
        let mut t = Table::new(&["rank", "state", "weight", "probability", "correct?"]);
        for (rank, (s, n)) in log.ranked().into_iter().take(15).enumerate() {
            t.row_owned(vec![
                (rank + 1).to_string(),
                s.to_string(),
                s.hamming_weight().to_string(),
                fmt_prob(n as f64 / log.total() as f64),
                if bench.correct().contains(&s) {
                    "YES"
                } else {
                    ""
                }
                .to_string(),
            ]);
        }
        out.section(
            format!(
                "{name}: PST {} IST {} ROCA {}",
                fmt_prob(r.pst),
                fmt_ratio(r.ist),
                r.roca.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
            ),
            t,
        );
    }
    out.section(
        "paper reference",
        "baseline PST 1.9%, 13 low-weight false positives above the answer \
         (rank 14); SIM lifts PST ~10%, IST ~23%, rank 14 -> 6",
    );
    out
}
