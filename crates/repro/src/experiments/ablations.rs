//! The DESIGN.md §5 ablation studies as a printable artifact.
//!
//! The Criterion benches in `crates/bench/benches/ablations.rs` time these
//! variants; this experiment prints their *quality* outcomes as tables so
//! the ablation record is part of `repro all`.

use crate::experiments::rng_for;
use crate::{Config, ExperimentOutput};
use invmeas::{
    AdaptiveInvertMeasure, InversionString, MeasurementPolicy, RbmsTable, StaticInvertMeasure,
};
use qmetrics::{fmt_prob, Table};
use qnoise::{CorrelatedReadout, DeviceModel, NoisyExecutor, ReadoutModel, TensorReadout};
use qsim::{BitString, Circuit};

/// Runs every quality ablation and renders one section per design choice.
pub fn ablations(cfg: &Config) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("ablations", "Design-choice ablations (DESIGN.md §5)");
    damping(&mut out);
    crosstalk(&mut out);
    sim_modes(cfg, &mut out);
    aim_budget(cfg, &mut out);
    out
}

/// ✦ `ablate_damping`: T1 relaxation over the measurement window is the
/// dominant source of the Hamming-weight bias.
fn damping(out: &mut ExperimentOutput) {
    let dev = DeviceModel::ibmqx2();
    let with = dev.readout();
    let without = CorrelatedReadout::from_tensor(TensorReadout::new(
        (0..dev.n_qubits())
            .map(|q| dev.qubit(q).assignment)
            .collect(),
    ));
    let mut t = Table::new(&["channel", "relative BMS(11111)", "weight correlation"]);
    for (name, r) in [
        ("assignment + T1 damping", &with),
        ("assignment only", &without),
    ] {
        let table = RbmsTable::exact(r);
        let rel = table.relative()[BitString::ones(5).index()];
        t.row_owned(vec![
            name.to_string(),
            fmt_prob(rel),
            format!("{:.3}", table.hamming_correlation()),
        ]);
    }
    out.section(
        "damping (bias source): removing the measurement-window T1 term collapses the bias",
        t,
    );
}

/// ✦ `ablate_correlation`: crosstalk adds which-qubit structure on ibmqx4.
fn crosstalk(out: &mut ExperimentOutput) {
    let dev = DeviceModel::ibmqx4();
    let with = dev.readout();
    let without = CorrelatedReadout::from_tensor(with.base().clone());
    // Crosstalk redistributes strength in a source-dependent way: measure
    // the largest per-state BMS change it causes, and which states move
    // most.
    let mut worst_state = BitString::zeros(5);
    let mut worst_delta = 0.0f64;
    for s in BitString::all(5) {
        let d = (with.success_probability(s) - without.success_probability(s)).abs();
        if d > worst_delta {
            worst_delta = d;
            worst_state = s;
        }
    }
    let mut t = Table::new(&["channel", "weight correlation", "BMS of 11111"]);
    for (name, r) in [("with crosstalk", &with), ("without crosstalk", &without)] {
        t.row_owned(vec![
            name.to_string(),
            format!("{:.3}", RbmsTable::exact(r).hamming_correlation()),
            fmt_prob(r.success_probability(BitString::ones(5))),
        ]);
    }
    out.section(
        format!(
            "crosstalk (arbitrary bias): redistributes strength per state (largest \
             change {} at {worst_state}) — it shapes WHICH states are weak, while the \
             heterogeneous per-qubit errors set the overall spread",
            fmt_prob(worst_delta)
        ),
        t,
    );
}

/// ✦ `ablate_sim_modes`: 1 / 2 / 4 / 8 inversion strings plus the
/// profile-guided set.
fn sim_modes(cfg: &Config, out: &mut ExperimentOutput) {
    let mut rng = rng_for(cfg, "ablate-sim-modes");
    let shots = cfg.shots(16_000);
    let dev = DeviceModel::ibmqx2();
    let exec = NoisyExecutor::readout_only(&dev);
    let ones = BitString::ones(5);
    let zeros = BitString::zeros(5);
    let profile = RbmsTable::exact(&dev.readout());

    let mut eight = InversionString::sim_four(5);
    for mask in ["00110", "11001", "01100", "10011"] {
        eight.push(InversionString::from_mask(mask.parse().expect("valid")));
    }
    let variants: Vec<(String, StaticInvertMeasure)> = vec![
        (
            "1 string (baseline)".into(),
            StaticInvertMeasure::new(vec![InversionString::standard(5)]),
        ),
        ("2 strings".into(), StaticInvertMeasure::two_mode(5)),
        (
            "4 strings (paper)".into(),
            StaticInvertMeasure::four_mode(5),
        ),
        ("8 strings".into(), StaticInvertMeasure::new(eight)),
        (
            "4 strings, profile-guided".into(),
            StaticInvertMeasure::profile_guided(&profile, 4),
        ),
    ];
    let mut t = Table::new(&["configuration", "PST of 11111", "PST of 00000"]);
    for (name, sim) in &variants {
        let weak = sim
            .execute(
                &Circuit::basis_state_preparation(ones),
                shots,
                &exec,
                &mut rng,
            )
            .frequency(&ones);
        let strong = sim
            .execute(
                &Circuit::basis_state_preparation(zeros),
                shots,
                &exec,
                &mut rng,
            )
            .frequency(&zeros);
        t.row_owned(vec![name.clone(), fmt_prob(weak), fmt_prob(strong)]);
    }
    out.section(
        "SIM mode count: two strings already rescue the extreme states; four cover \
         mid-weight states; more adds nothing (the paper chose four)",
        t,
    );
}

/// ✦ `ablate_aim_budget`: canary fraction and candidate count.
fn aim_budget(cfg: &Config, out: &mut ExperimentOutput) {
    let mut rng = rng_for(cfg, "ablate-aim-budget");
    let shots = cfg.shots(16_000);
    let dev = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::readout_only(&dev);
    let profile = RbmsTable::exact(&dev.readout());
    let target: BitString = "11011".parse().expect("valid");
    let circuit = Circuit::basis_state_preparation(target);

    let mut t = Table::new(&["AIM configuration", "PST of 11011"]);
    let configs: Vec<(String, AdaptiveInvertMeasure)> = vec![
        (
            "canary 10%".into(),
            AdaptiveInvertMeasure::new(profile.clone()).with_canary_fraction(0.10),
        ),
        (
            "canary 25% (paper)".into(),
            AdaptiveInvertMeasure::new(profile.clone()),
        ),
        (
            "canary 50%".into(),
            AdaptiveInvertMeasure::new(profile.clone()).with_canary_fraction(0.50),
        ),
        (
            "k = 1".into(),
            AdaptiveInvertMeasure::new(profile.clone()).with_k(1),
        ),
        (
            "k = 2".into(),
            AdaptiveInvertMeasure::new(profile.clone()).with_k(2),
        ),
        (
            "k = 4 (paper)".into(),
            AdaptiveInvertMeasure::new(profile.clone()).with_k(4),
        ),
        (
            "k = 8".into(),
            AdaptiveInvertMeasure::new(profile).with_k(8),
        ),
    ];
    for (name, aim) in &configs {
        let pst = aim
            .execute(&circuit, shots, &exec, &mut rng)
            .frequency(&target);
        t.row_owned(vec![name.clone(), fmt_prob(pst)]);
    }
    out.section(
        "AIM budget: smaller canary fractions and smaller k concentrate budget on the \
         winning prediction for this clean workload; the paper's 25%/k=4 trades peak \
         PST for robustness when the canary is noisier",
        t,
    );
}
