//! Tables 1, 3, and 4: machine and benchmark configuration artifacts.

use crate::{Config, ExperimentOutput};
use qmetrics::{fmt_pct, Table};
use qnoise::DeviceModel;

/// Table 1: min/avg/max measurement error rate per machine.
///
/// The "assignment" columns reproduce the paper's Table 1 (IBM reports the
/// discriminator-only error); the "effective" columns add T1 relaxation
/// over the measurement window — the full bias an application experiences.
pub fn table1(_cfg: &Config) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "table1",
        "Error rate of the measurement operation (paper Table 1)",
    );
    let mut t = Table::new(&[
        "machine",
        "assign min",
        "assign avg",
        "assign max",
        "effective min",
        "effective avg",
        "effective max",
    ]);
    for dev in [
        DeviceModel::ibmqx2(),
        DeviceModel::ibmqx4(),
        DeviceModel::ibmq_melbourne(),
    ] {
        let (min, avg, max) = dev.assignment_error_stats();
        let eff: Vec<f64> = dev
            .effective_pairs()
            .iter()
            .map(|p| p.mean_error())
            .collect();
        let (emin, eavg, emax) = qmetrics::min_avg_max(&eff);
        t.row_owned(vec![
            dev.name().to_string(),
            fmt_pct(min),
            fmt_pct(avg),
            fmt_pct(max),
            fmt_pct(emin),
            fmt_pct(eavg),
            fmt_pct(emax),
        ]);
    }
    out.section("error rates", t);
    out.section(
        "paper reference",
        "ibmqx2: 1.2% / 3.8% / 12.8%   ibmqx4: 3.4% / 8.2% / 20.7%   \
         ibmq-melbourne: 2.2% / 8.12% / 31%",
    );
    out
}

/// Table 3: benchmark characteristics.
pub fn table3(_cfg: &Config) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("table3", "Benchmark characteristics (paper Table 3)");
    let mut t = Table::new(&[
        "benchmark",
        "problem",
        "output",
        "qubits",
        "gates",
        "2q gates",
    ]);
    for b in qworkloads::suite_q5()
        .iter()
        .chain(qworkloads::suite_q14().iter())
    {
        let problem = match b.kind() {
            qworkloads::BenchmarkKind::BernsteinVazirani => "Bernstein-Vazirani",
            qworkloads::BenchmarkKind::QaoaMaxCut => "QAOA max-cut",
        };
        t.row_owned(vec![
            b.name().to_string(),
            problem.to_string(),
            b.correct().outputs()[0].to_string(),
            b.circuit().n_qubits().to_string(),
            b.circuit().len().to_string(),
            b.circuit().two_qubit_gate_count().to_string(),
        ]);
    }
    out.section("benchmarks", t);
    out
}

/// Table 4: quantum machines.
pub fn table4(_cfg: &Config) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("table4", "Quantum machines (paper Table 4)");
    let mut t = Table::new(&["platform", "qubits", "coupling edges", "meas window (us)"]);
    for dev in [
        DeviceModel::ibmqx2(),
        DeviceModel::ibmqx4(),
        DeviceModel::ibmq_melbourne(),
    ] {
        t.row_owned(vec![
            dev.name().to_string(),
            dev.n_qubits().to_string(),
            dev.coupling().len().to_string(),
            format!("{:.1}", dev.meas_duration_us()),
        ]);
    }
    out.section("machines", t);
    out
}
