//! Figures 1, 4, 5, and 15: measurement-bias characterization.

use crate::experiments::rng_for;
use crate::{Config, ExperimentOutput};
use invmeas::{InversionString, RbmsTable};
use qmetrics::{fmt_prob, Table};
use qnoise::{DeviceModel, Executor, NoisyExecutor};
use qsim::{BitString, Circuit};

/// Figure 1: the probability of successfully measuring the all-zeros
/// state, the all-ones state, and the all-ones state via
/// invert-and-measure, on the five-qubit machine.
pub fn fig1(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "fig1");
    let shots = cfg.shots(16_000);
    let dev = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::from_device(&dev);
    let zeros = BitString::zeros(5);
    let ones = BitString::ones(5);

    let run_case = |circuit: &Circuit,
                    correction: Option<InversionString>,
                    expected: BitString,
                    rng: &mut rand::rngs::StdRng| {
        let raw = exec.run(circuit, shots, rng);
        let log = match correction {
            Some(inv) => inv.correct(&raw),
            None => raw,
        };
        let pst = log.frequency(&expected);
        let dominant: Vec<String> = log
            .ranked()
            .into_iter()
            .filter(|&(s, _)| s != expected)
            .take(3)
            .map(|(s, n)| format!("{s} ({:.3})", n as f64 / log.total() as f64))
            .collect();
        (pst, dominant.join(", "))
    };

    let prep_zeros = Circuit::basis_state_preparation(zeros);
    let prep_ones = Circuit::basis_state_preparation(ones);
    let inv = InversionString::full(5);
    let inverted_circuit = inv.apply(&prep_ones);

    let (p_a, d_a) = run_case(&prep_zeros, None, zeros, &mut rng);
    let (p_b, d_b) = run_case(&prep_ones, None, ones, &mut rng);
    let (p_c, d_c) = run_case(&inverted_circuit, Some(inv), ones, &mut rng);

    let mut out = ExperimentOutput::new(
        "fig1",
        "PST of direct and inverted measurement on IBM-Q5 (paper Figure 1)",
    );
    let mut t = Table::new(&["case", "PST", "dominant incorrect states"]);
    t.row_owned(vec!["(a) measure 00000".into(), fmt_prob(p_a), d_a]);
    t.row_owned(vec!["(b) measure 11111".into(), fmt_prob(p_b), d_b]);
    t.row_owned(vec![
        "(c) invert & measure 11111".into(),
        fmt_prob(p_c),
        d_c,
    ]);
    out.section("results", t);
    out.section(
        "paper reference",
        "0.84 / 0.62 / 0.78 — inverting recovers most of the weak state's loss",
    );
    out
}

/// Figure 4: relative BMS for all 32 ibmqx2 basis states, measured directly
/// (basis sweep) and with the equal-superposition technique.
pub fn fig4(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "fig4");
    let dev = DeviceModel::ibmqx2();
    let exec = NoisyExecutor::readout_only(&dev);
    let direct = RbmsTable::brute_force(&exec, cfg.shots(16_000), &mut rng);
    let esct_raw = RbmsTable::esct_raw(&exec, cfg.shots(512_000), &mut rng);
    let esct = RbmsTable::esct(&exec, cfg.shots(512_000), &mut rng);

    let mut out = ExperimentOutput::new(
        "fig4",
        "Relative BMS of all 32 ibmqx2 basis states (paper Figure 4)",
    );
    let mut t = Table::new(&["state", "weight", "direct", "ESCT raw", "ESCT corrected"]);
    let (d, er, ec) = (direct.relative(), esct_raw.relative(), esct.relative());
    for s in BitString::all_by_hamming_weight(5) {
        t.row_owned(vec![
            s.to_string(),
            s.hamming_weight().to_string(),
            fmt_prob(d[s.index()]),
            fmt_prob(er[s.index()]),
            fmt_prob(ec[s.index()]),
        ]);
    }
    out.section("relative strengths (x-axis in ascending Hamming weight)", t);
    let mut stats = Table::new(&["series", "weight correlation", "MSE vs direct"]);
    stats.row_owned(vec![
        "direct".into(),
        format!("{:.3}", direct.hamming_correlation()),
        "-".into(),
    ]);
    stats.row_owned(vec![
        "ESCT raw".into(),
        format!("{:.3}", esct_raw.hamming_correlation()),
        format!("{:.4}", esct_raw.mse_vs(&direct)),
    ]);
    stats.row_owned(vec![
        "ESCT corrected".into(),
        format!("{:.3}", esct.hamming_correlation()),
        format!("{:.4}", esct.mse_vs(&direct)),
    ]);
    out.section("summary", stats);
    out.section(
        "paper reference",
        "correlation coefficient -0.93; relative BMS of 11111 ~ 0.38",
    );
    out
}

/// Figure 5: average relative BMS per Hamming-weight class for 10-bit basis
/// states on ibmq-melbourne.
pub fn fig5(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "fig5");
    // Ten qubits of the 14-qubit machine (skipping the worst, as the
    // paper's allocation would).
    let dev = DeviceModel::ibmq_melbourne().subdevice(&[0, 1, 2, 3, 4, 5, 7, 8, 9, 10]);
    let exec = NoisyExecutor::readout_only(&dev);
    let esct = RbmsTable::esct(&exec, cfg.shots(150_000), &mut rng);
    let readout = dev.readout();
    let exact = RbmsTable::exact(&readout);

    let by_weight_est = qmetrics::average_by_hamming_weight(10, &esct.relative());
    let by_weight_exact = qmetrics::average_by_hamming_weight(10, &exact.relative());

    let mut out = ExperimentOutput::new(
        "fig5",
        "Average relative BMS per Hamming weight, 10-bit states on melbourne (paper Figure 5)",
    );
    let mut t = Table::new(&[
        "hamming weight",
        "measured (ESCT, 150k trials)",
        "exact channel",
    ]);
    for w in 0..=10usize {
        t.row_owned(vec![
            w.to_string(),
            fmt_prob(by_weight_est[w]),
            fmt_prob(by_weight_exact[w]),
        ]);
    }
    out.section("average relative strength per weight class", t);
    out.section(
        "paper reference",
        "monotone decrease from 1.0 at weight 0 to ~0.45 at weight 10",
    );
    out
}

/// Figure 15 (Appendix A): validation of ESCT and AWCT against the direct
/// 32-state characterization on ibmqx4.
pub fn fig15(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "fig15");
    let dev = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::readout_only(&dev);
    let direct = RbmsTable::brute_force(&exec, cfg.shots(16_000), &mut rng);
    let esct = RbmsTable::esct(&exec, cfg.shots(512_000), &mut rng);
    let awct = RbmsTable::awct(&exec, 3, 2, cfg.shots(170_000), &mut rng);

    let mut out = ExperimentOutput::new(
        "fig15",
        "Validation of ESCT and AWCT on ibmqx4 (paper Figure 15, Appendix A)",
    );
    let mut t = Table::new(&["state", "direct", "ESCT", "AWCT (m=3, overlap=2)"]);
    let (d, e, a) = (direct.relative(), esct.relative(), awct.relative());
    for s in BitString::all(5) {
        t.row_owned(vec![
            s.to_string(),
            fmt_prob(d[s.index()]),
            fmt_prob(e[s.index()]),
            fmt_prob(a[s.index()]),
        ]);
    }
    out.section(
        "relative strengths (x-axis in state order, as the paper plots)",
        t,
    );

    let mut stats = Table::new(&["technique", "trials used", "MSE vs direct"]);
    for (name, table) in [("direct", &direct), ("ESCT", &esct), ("AWCT", &awct)] {
        stats.row_owned(vec![
            name.to_string(),
            table.trials_used().to_string(),
            format!("{:.4}", table.mse_vs(&direct)),
        ]);
    }
    out.section("cost/accuracy", stats);
    out.section(
        "paper reference",
        "ESCT within 5% MSE; AWCT matches the exhaustive sweep with \
         O(2^m)-scaling trials (96 states instead of 16k for IBM-Q14)",
    );
    out
}
