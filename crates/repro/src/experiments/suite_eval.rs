//! The shared benchmark-suite evaluation behind Figure 10, Table 5, and
//! Figure 14: every Table 3 benchmark on its machine, under baseline, SIM,
//! and AIM, with identical trial budgets.

use crate::experiments::rng_for;
use crate::{Config, ExperimentOutput};
use invmeas::{AdaptiveInvertMeasure, Baseline, MeasurementPolicy, RbmsTable, StaticInvertMeasure};
use qmetrics::{fmt_prob, fmt_ratio, ist, pst, Table};
use qnoise::{DeviceModel, NoisyExecutor};
use qworkloads::{suite_q14, suite_q5, Benchmark};

/// The policies compared, in order.
pub const POLICIES: [&str; 3] = ["baseline", "SIM", "AIM"];

/// One benchmark × machine evaluation.
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// Machine name.
    pub machine: String,
    /// Benchmark name (paper nomenclature).
    pub benchmark: String,
    /// PST under baseline / SIM / AIM.
    pub pst: [f64; 3],
    /// IST under baseline / SIM / AIM.
    pub ist: [f64; 3],
}

fn eval_on(
    cfg: &Config,
    machine: &DeviceModel,
    benchmarks: &[Benchmark],
    rows: &mut Vec<SuiteRow>,
) {
    let shots = cfg.shots(32_000);
    for bench in benchmarks {
        let width = bench.circuit().n_qubits();
        // Variability-aware allocation: the benchmark runs on the machine's
        // best `width` qubits (identical for all three policies).
        let dev = if width == machine.n_qubits() {
            machine.clone()
        } else {
            machine.best_qubits_subdevice(width)
        };
        let exec = NoisyExecutor::from_device(&dev);
        let mut rng = rng_for(cfg, &format!("suite-{}-{}", machine.name(), bench.name()));

        // AIM profile, built as the paper prescribes: brute force on small
        // registers, sliding-window AWCT beyond 5 qubits (§6.2.1).
        let profile = if width <= 5 {
            RbmsTable::brute_force(&exec, cfg.shots(16_000), &mut rng)
        } else {
            RbmsTable::awct(&exec, 4, 2, cfg.shots(16_000), &mut rng)
        };
        let sim = StaticInvertMeasure::four_mode(width);
        let aim = AdaptiveInvertMeasure::new(profile);
        let policies: [&dyn MeasurementPolicy; 3] = [&Baseline, &sim, &aim];

        let mut row = SuiteRow {
            machine: machine.name().to_string(),
            benchmark: bench.name().to_string(),
            pst: [0.0; 3],
            ist: [0.0; 3],
        };
        for (i, policy) in policies.iter().enumerate() {
            let log = policy.execute(bench.circuit(), shots, &exec, &mut rng);
            row.pst[i] = pst(&log, bench.correct());
            row.ist[i] = ist(&log, bench.correct());
        }
        rows.push(row);
    }
}

/// Evaluates the full paper suite: bv-4A/4B + qaoa-4A/4B on both five-qubit
/// machines, bv-6/7 + qaoa-6/7 on melbourne — 12 rows.
pub fn evaluate(cfg: &Config) -> Vec<SuiteRow> {
    let mut rows = Vec::with_capacity(12);
    let q5 = suite_q5();
    eval_on(cfg, &DeviceModel::ibmqx2(), &q5, &mut rows);
    eval_on(cfg, &DeviceModel::ibmqx4(), &q5, &mut rows);
    eval_on(cfg, &DeviceModel::ibmq_melbourne(), &suite_q14(), &mut rows);
    rows
}

/// Figure 10: PST of SIM normalized to the baseline, per benchmark and
/// machine.
pub fn fig10(rows: &[SuiteRow]) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig10",
        "Impact of SIM on PST, normalized to baseline (paper Figure 10)",
    );
    let mut t = Table::new(&[
        "machine",
        "benchmark",
        "baseline PST",
        "SIM PST",
        "relative",
    ]);
    let mut per_machine: Vec<(String, Vec<f64>)> = Vec::new();
    for r in rows {
        let rel = r.pst[1] / r.pst[0].max(1e-9);
        t.row_owned(vec![
            r.machine.clone(),
            r.benchmark.clone(),
            fmt_prob(r.pst[0]),
            fmt_prob(r.pst[1]),
            fmt_ratio(rel),
        ]);
        match per_machine.iter_mut().find(|(m, _)| *m == r.machine) {
            Some((_, v)) => v.push(rel),
            None => per_machine.push((r.machine.clone(), vec![rel])),
        }
    }
    out.section("SIM PST relative to baseline", t);
    let mut s = Table::new(&["machine", "mean improvement", "max improvement"]);
    for (m, rels) in &per_machine {
        let (_, avg, max) = qmetrics::min_avg_max(rels);
        s.row_owned(vec![m.clone(), fmt_ratio(avg), fmt_ratio(max)]);
    }
    out.section("per-machine summary", s);
    out.section(
        "paper reference",
        "SIM improves PST on all machines, by as much as 2x on ibmqx4",
    );
    out
}

/// Table 5: Inference Strength for baseline, SIM, and AIM. A check mark
/// means the correct answer tops the output log (IST > 1).
pub fn table5(rows: &[SuiteRow]) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "table5",
        "Inference Strength for baseline, SIM, and AIM (paper Table 5)",
    );
    let fmt_ist = |v: f64| {
        if v.is_infinite() {
            "inf ok".to_string()
        } else if v >= 1.0 {
            format!("{v:.2} ok")
        } else {
            format!("{v:.2}")
        }
    };
    let mut t = Table::new(&["benchmark", "machine", "baseline", "SIM", "AIM"]);
    for r in rows {
        t.row_owned(vec![
            r.benchmark.clone(),
            r.machine.clone(),
            fmt_ist(r.ist[0]),
            fmt_ist(r.ist[1]),
            fmt_ist(r.ist[2]),
        ]);
    }
    out.section("IST ('ok' marks IST >= 1: correct answer tops the log)", t);
    out.section(
        "paper reference",
        "on ibmqx4 SIM improves IST by 3.4x and AIM by 7.2x on average; \
         bv-4A goes 0.46 -> 2.85 -> 10.38",
    );
    out
}

/// Figure 14: PST of SIM and AIM normalized to the baseline.
pub fn fig14(rows: &[SuiteRow]) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig14",
        "PST of SIM and AIM normalized to baseline (paper Figure 14)",
    );
    let mut t = Table::new(&["machine", "benchmark", "SIM gain", "AIM gain"]);
    let mut per_machine: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for r in rows {
        let sim_rel = r.pst[1] / r.pst[0].max(1e-9);
        let aim_rel = r.pst[2] / r.pst[0].max(1e-9);
        t.row_owned(vec![
            r.machine.clone(),
            r.benchmark.clone(),
            fmt_ratio(sim_rel),
            fmt_ratio(aim_rel),
        ]);
        match per_machine.iter_mut().find(|(m, _, _)| *m == r.machine) {
            Some((_, s, a)) => {
                s.push(sim_rel);
                a.push(aim_rel);
            }
            None => per_machine.push((r.machine.clone(), vec![sim_rel], vec![aim_rel])),
        }
    }
    out.section("relative PST", t);
    let mut s = Table::new(&["machine", "SIM mean", "SIM max", "AIM mean", "AIM max"]);
    for (m, sims, aims) in &per_machine {
        let (_, s_avg, s_max) = qmetrics::min_avg_max(sims);
        let (_, a_avg, a_max) = qmetrics::min_avg_max(aims);
        s.row_owned(vec![
            m.clone(),
            fmt_ratio(s_avg),
            fmt_ratio(s_max),
            fmt_ratio(a_avg),
            fmt_ratio(a_max),
        ]);
    }
    out.section("per-machine summary", s);
    out.section(
        "paper reference",
        "SIM up to 2x (ibmqx4 +74% mean), AIM up to 3x (ibmqx4 +290% mean); \
         smaller but consistent gains on ibmqx2 and melbourne",
    );
    out
}
