//! Figures 3, 11, and 13: Bernstein-Vazirani sweeps over key values.

use crate::experiments::rng_for;
use crate::{Config, ExperimentOutput};
use invmeas::{AdaptiveInvertMeasure, Baseline, MeasurementPolicy, RbmsTable, StaticInvertMeasure};
use qmetrics::{fmt_prob, min_avg_max, pearson_correlation, pst, Table};
use qnoise::{DeviceModel, Executor, IdealExecutor, NoisyExecutor};
use qsim::BitString;
use qworkloads::Benchmark;

/// Figure 3(b–d): BV with a 2-bit key on an ideal machine, a successful
/// NISQ execution, and a masked one (high-weight key on weak qubits).
pub fn fig3(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "fig3");
    let shots = cfg.shots(16_000);
    // An illustrative two-qubit machine whose second qubit sits at the
    // worst case of Table 1 (a 31% mean readout error concentrated in the
    // 1 -> 0 direction, p10 = 0.55): exactly the regime where a key bit is
    // more often lost than kept, producing the paper's masked panel (d).
    let readout = qnoise::CorrelatedReadout::from_tensor(qnoise::TensorReadout::new(vec![
        qnoise::FlipPair::new(0.05, 0.15),
        qnoise::FlipPair::new(0.05, 0.55),
    ]));
    let noisy = NoisyExecutor::new(readout, qnoise::GateNoise::uniform(2, 0.002, 0.03));
    let ideal = IdealExecutor::new(2);

    let mut out = ExperimentOutput::new(
        "fig3",
        "BV 2-bit output distributions: ideal / successful / masked (paper Figure 3)",
    );
    let cases: [(&str, &dyn Executor, &str); 3] = [
        ("(b) ideal machine, key 01", &ideal, "01"),
        ("(c) NISQ machine, key 01", &noisy, "01"),
        ("(d) NISQ machine, key 11", &noisy, "11"),
    ];
    for (label, exec, key) in cases {
        let bench = Benchmark::bv_phase("bv-2", key.parse().expect("valid"));
        let log = Baseline.execute(bench.circuit(), shots, exec, &mut rng);
        let mut t = Table::new(&["output", "probability", "correct?"]);
        for s in BitString::all(2) {
            t.row_owned(vec![
                s.to_string(),
                fmt_prob(log.frequency(&s)),
                if bench.correct().contains(&s) {
                    "YES"
                } else {
                    ""
                }
                .to_string(),
            ]);
        }
        let p = pst(&log, bench.correct());
        let inferable = log
            .mode()
            .map(|m| bench.correct().contains(&m))
            .unwrap_or(false);
        out.section(
            format!("{label}: PST {}, inferable: {inferable}", fmt_prob(p)),
            t,
        );
    }
    out.section(
        "paper reference",
        "(c) correct answer at 50% is inferable; (d) a 35% incorrect answer \
         masks the 30% correct one",
    );
    out
}

/// Figure 11: (a) PST of directly measuring each of the 32 basis states on
/// ibmqx4 — the arbitrary, non-monotone bias; (b) PST of BV across all 32
/// keys, which tracks the same per-state strength.
pub fn fig11(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "fig11");
    let dev = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::from_device(&dev);

    // (a) direct basis measurement.
    let basis_shots = cfg.shots(16_000);
    let mut basis_pst = Vec::with_capacity(32);
    for s in BitString::all(5) {
        let c = qsim::Circuit::basis_state_preparation(s);
        let log = exec.run(&c, basis_shots, &mut rng);
        basis_pst.push(log.frequency(&s));
    }

    // (b) BV with every key (ancilla-free so the output register is the
    // 5-bit key, matching the x-axis of the paper's plot).
    let bv_shots = cfg.shots(24_000);
    let mut bv_pst = Vec::with_capacity(32);
    for key in BitString::all(5) {
        let bench = Benchmark::bv_phase("bv", key);
        let log = Baseline.execute(bench.circuit(), bv_shots, &exec, &mut rng);
        bv_pst.push(pst(&log, bench.correct()));
    }

    let mut out = ExperimentOutput::new(
        "fig11",
        "Arbitrary measurement bias on ibmqx4 (paper Figure 11)",
    );
    let mut t = Table::new(&["state/key", "weight", "(a) basis PST", "(b) BV PST"]);
    for s in BitString::all_by_hamming_weight(5) {
        t.row_owned(vec![
            s.to_string(),
            s.hamming_weight().to_string(),
            fmt_prob(basis_pst[s.index()]),
            fmt_prob(bv_pst[s.index()]),
        ]);
    }
    out.section("per-state PST (x-axis in ascending Hamming weight)", t);

    let weight_corr = qmetrics::hamming_weight_correlation(5, &basis_pst);
    let series_corr = pearson_correlation(&basis_pst, &bv_pst);
    out.section(
        "summary",
        format!(
            "basis-PST vs Hamming-weight correlation: {weight_corr:.3} (weaker than \
             ibmqx2's -0.93 — the bias is arbitrary)\n\
             BV PST vs basis PST correlation: {series_corr:.3} (application fidelity \
             tracks measurement strength)"
        ),
    );
    out.section(
        "paper reference",
        "strength is not monotone in weight on ibmqx4; weak basis states have \
         significantly lower application PST",
    );
    out
}

/// Figure 13: BV for all 32 keys under baseline, SIM, and AIM on ibmqx4.
pub fn fig13(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "fig13");
    let shots = cfg.shots(8_000);
    let dev = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::from_device(&dev);
    // AIM's machine profile: brute-force characterization on the same
    // executor (the paper's IBM-Q5 methodology, §6.2.1).
    let profile = RbmsTable::brute_force(&exec, cfg.shots(16_000), &mut rng);
    let sim = StaticInvertMeasure::four_mode(5);
    let aim = AdaptiveInvertMeasure::new(profile);

    let mut series: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut t = Table::new(&["key", "weight", "baseline", "SIM", "AIM"]);
    for key in BitString::all_by_hamming_weight(5) {
        let bench = Benchmark::bv_phase("bv", key);
        let policies: [&dyn MeasurementPolicy; 3] = [&Baseline, &sim, &aim];
        let mut row = vec![key.to_string(), key.hamming_weight().to_string()];
        for (i, policy) in policies.iter().enumerate() {
            let log = policy.execute(bench.circuit(), shots, &exec, &mut rng);
            let p = pst(&log, bench.correct());
            series[i].push(p);
            row.push(fmt_prob(p));
        }
        t.row_owned(row);
    }

    let mut out = ExperimentOutput::new(
        "fig13",
        "BV with all 32 keys: baseline vs SIM vs AIM on ibmqx4 (paper Figure 13)",
    );
    out.section("PST per key (x-axis in ascending Hamming weight)", t);
    let mut s = Table::new(&["policy", "min PST", "avg PST", "max PST"]);
    for (name, vals) in [
        ("baseline", &series[0]),
        ("SIM", &series[1]),
        ("AIM", &series[2]),
    ] {
        let (min, avg, max) = min_avg_max(vals);
        s.row_owned(vec![
            name.to_string(),
            fmt_prob(min),
            fmt_prob(avg),
            fmt_prob(max),
        ]);
    }
    out.section("stability summary", s);
    out.section(
        "paper reference",
        "baseline/SIM PST varies strongly with the key; AIM stays uniformly \
         high except at the trivial strongest state",
    );
    out
}
