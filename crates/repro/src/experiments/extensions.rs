//! Extension experiments beyond the paper's figures: the §6.1
//! repeatability study as a printable artifact, and the §4.3
//! variability-aware mapping methodology made explicit.

use crate::experiments::rng_for;
use crate::{Config, ExperimentOutput};
use invmeas::{AdaptiveInvertMeasure, Baseline, MeasurementPolicy, RbmsTable};
use qmetrics::{fmt_prob, pearson_correlation, pst, Table};
use qnoise::{CalibrationDrift, DeviceModel, Executor, NoisyExecutor};
use qworkloads::Benchmark;

/// §6.1 repeatability: the paper re-measured ibmqx4's arbitrary bias over
/// 35 days / 100 calibration cycles and found it repeatable. This artifact
/// measures the rank correlation of the RBMS across drifted calibration
/// windows and shows that an AIM profile taken in one window keeps working
/// in later windows.
pub fn drift(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "drift");
    let drift = CalibrationDrift::new(DeviceModel::ibmqx4(), 0.10).with_seed(cfg.seed);
    let reference = RbmsTable::exact(&drift.window(0).readout());

    let mut out = ExperimentOutput::new(
        "drift",
        "Repeatability of the measurement bias across calibration windows (paper §6.1)",
    );
    let mut t = Table::new(&[
        "window",
        "RBMS correlation vs window 0",
        "strongest state",
        "weakest state",
    ]);
    let windows = [1u64, 5, 20, 50, 99];
    let mut min_corr = f64::INFINITY;
    for &w in &windows {
        let snap = RbmsTable::exact(&drift.window(w).readout());
        let corr = pearson_correlation(&reference.relative(), &snap.relative());
        min_corr = min_corr.min(corr);
        t.row_owned(vec![
            format!("w{w}"),
            format!("{corr:.4}"),
            snap.strongest_state().to_string(),
            snap.weakest_state().to_string(),
        ]);
    }
    out.section("bias structure across 100 windows (10% parameter drift)", t);

    // A stale profile still drives AIM: profile in window 0, execute in
    // window 99.
    let shots = cfg.shots(8_000);
    let late = drift.window(99);
    let exec = NoisyExecutor::readout_only(&late);
    let bench = Benchmark::bv_phase("bv-stale", "11011".parse().expect("valid"));
    let base = pst(
        &Baseline.execute(bench.circuit(), shots, &exec, &mut rng),
        bench.correct(),
    );
    let stale_aim = AdaptiveInvertMeasure::new(reference.clone());
    let aim = pst(
        &stale_aim.execute(bench.circuit(), shots, &exec, &mut rng),
        bench.correct(),
    );
    out.section(
        "stale-profile AIM",
        format!(
            "profile from window 0, execution in window 99: baseline PST {}, AIM PST {} \
             ({}x) — the bias is stable enough to reuse profiles across calibrations",
            fmt_prob(base),
            fmt_prob(aim),
            format_args!("{:.2}", aim / base.max(1e-9)),
        ),
    );
    out.section(
        "paper reference",
        format!(
            "bias evaluated over 35 days / 100 cycles and found repeatable \
             (minimum structure correlation here: {min_corr:.3})"
        ),
    );
    out
}

/// Related-work comparison: Invert-and-Measure versus calibration-matrix
/// unfolding (the mitigation approach of Sun & Geller 2019 and later
/// toolkits), which the paper discusses only qualitatively. Both recover
/// PST on readout-dominated workloads; unfolding needs `O(2^n)`
/// calibration circuits and post-processes the distribution (producing
/// quasi-probabilities that must be clipped), while SIM/AIM act shot by
/// shot, and the scalable tensor-product unfolder is blind to crosstalk.
pub fn unfolding(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "unfolding");
    let shots = cfg.shots(16_000);
    let dev = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::readout_only(&dev);
    let readout = dev.readout();
    let profile = RbmsTable::exact(&readout);
    let cm = invmeas::ConfusionMatrix::from_model(&readout);
    let tensor = invmeas::TensorUnfolder::from_tensor(readout.base());

    let mut out = ExperimentOutput::new(
        "unfolding",
        "Invert-and-Measure vs calibration-matrix unfolding (related work)",
    );
    let mut t = Table::new(&[
        "target state",
        "baseline",
        "SIM-4",
        "AIM",
        "dense unfold",
        "tensor unfold",
    ]);
    let sim = invmeas::StaticInvertMeasure::four_mode(5);
    let aim = AdaptiveInvertMeasure::new(profile);
    for target in ["00000", "01011", "11111"] {
        let target: qsim::BitString = target.parse().expect("valid");
        let circuit = qsim::Circuit::basis_state_preparation(target);
        let base_log = Baseline.execute(&circuit, shots, &exec, &mut rng);
        let sim_log = sim.execute(&circuit, shots, &exec, &mut rng);
        let aim_log = aim.execute(&circuit, shots, &exec, &mut rng);
        t.row_owned(vec![
            target.to_string(),
            fmt_prob(base_log.frequency(&target)),
            fmt_prob(sim_log.frequency(&target)),
            fmt_prob(aim_log.frequency(&target)),
            fmt_prob(cm.unfold(&base_log).probability_of(target)),
            fmt_prob(tensor.unfold(&base_log).probability_of(target)),
        ]);
    }
    out.section(
        "recovered probability of the true state (ibmqx4, readout only)",
        t,
    );
    out.section(
        "trade-offs",
        "dense unfolding is near-exact but needs 2^n calibration circuits and O(8^n) \
         solves; the scalable tensor unfolder cannot see ibmqx4's readout crosstalk; \
         SIM needs no calibration at all and AIM needs only the RBMS profile — and \
         both produce real shot counts rather than clipped quasi-probabilities",
    );
    out
}

/// §4.3 methodology: variability-aware allocation + SWAP routing. Compares
/// running GHZ-5 on melbourne under a naive allocation (first five qubits,
/// which includes mediocre ones) versus the variability-aware placement,
/// and shows the router's SWAP accounting for a connectivity-hostile
/// workload.
pub fn mapping(cfg: &Config) -> ExperimentOutput {
    let mut rng = rng_for(cfg, "mapping");
    let shots = cfg.shots(16_000);
    let dev = DeviceModel::ibmq_melbourne();
    let ghz = qworkloads::ghz_circuit(5);

    let mut out = ExperimentOutput::new(
        "mapping",
        "Variability-aware allocation and SWAP routing (paper §4.3 methodology)",
    );

    let mut t = Table::new(&["allocation", "physical qubits", "swaps", "GHZ success"]);
    let naive = qmapper::Placement::identity(5);
    let aware = qmapper::allocate(&dev, 5).expect("melbourne fits 5 qubits");
    for (name, placement) in [("naive (Q0..Q4)", &naive), ("variability-aware", &aware)] {
        let routed = qmapper::route(&ghz, &dev, placement).expect("routable");
        let exec = NoisyExecutor::from_device(&dev);
        let physical_log = exec.run(routed.circuit(), shots, &mut rng);
        let logical = routed.logical_counts(&physical_log);
        let success = logical.frequency(&qsim::BitString::zeros(5))
            + logical.frequency(&qsim::BitString::ones(5));
        let qubits: Vec<String> = placement
            .physical()
            .iter()
            .map(|q| format!("Q{q}"))
            .collect();
        t.row_owned(vec![
            name.to_string(),
            qubits.join(","),
            routed.swap_count().to_string(),
            fmt_prob(success),
        ]);
    }
    out.section("GHZ-5 on melbourne under two allocations", t);

    // Routing cost of a connectivity-hostile circuit: QAOA's complete
    // bipartite cost layer on the ladder coupling map.
    let g = qworkloads::Graph::complete_bipartite("101011".parse().expect("valid"));
    let qaoa = qworkloads::Qaoa::new(g, vec![0.7, 0.3], vec![0.4, 0.2]);
    let circuit = qaoa.circuit();
    let routed = qmapper::route_auto(&circuit, &dev).expect("routable");
    out.section(
        "routing cost",
        format!(
            "qaoa-6 (p=2, {} two-qubit gates) routed onto melbourne: {} SWAPs inserted, \
             physical depth {} (logical depth {})",
            circuit.two_qubit_gate_count(),
            routed.swap_count(),
            routed.circuit().depth(),
            circuit.depth(),
        ),
    );
    out.section(
        "paper reference",
        "benchmarks are mapped on the strongest qubits and links with the minimum \
         number of SWAPs; baseline and mitigated runs share the identical mapping",
    );
    out
}
