//! Command-line entry point for the reproduction harness.

use repro::experiments::{self, ALL_EXPERIMENTS};
use repro::Config;
use std::process::ExitCode;

fn print_usage() {
    eprintln!("usage: repro <experiment|all|list> [--scale FACTOR] [--seed SEED]");
    eprintln!();
    eprintln!("experiments:");
    for (id, summary) in ALL_EXPERIMENTS {
        eprintln!("  {id:<8} {summary}");
    }
    eprintln!();
    eprintln!("--scale multiplies every trial count (default 1.0 = paper budgets)");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<String> = None;
    let mut cfg = Config::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => cfg.scale = s,
                _ => {
                    eprintln!("--scale needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => cfg.seed = s,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other if target.is_none() => target = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(target) = target else {
        print_usage();
        return ExitCode::FAILURE;
    };
    if target == "list" {
        for (id, summary) in ALL_EXPERIMENTS {
            println!("{id:<8} {summary}");
        }
        return ExitCode::SUCCESS;
    }
    match experiments::run(&target, &cfg) {
        Ok(outputs) => {
            for out in outputs {
                println!("{out}");
            }
            ExitCode::SUCCESS
        }
        Err(unknown) => {
            eprintln!("unknown experiment {unknown:?}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}
