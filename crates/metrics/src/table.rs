//! Plain-text table rendering for the reproduction harness.
//!
//! Every `repro` subcommand prints its table/figure data as an aligned
//! ASCII table so the output can be compared side by side with the paper.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple aligned ASCII table builder.
///
/// # Examples
///
/// ```
/// use qmetrics::Table;
///
/// let mut t = Table::new(&["machine", "min", "avg", "max"]);
/// t.row(&["ibmqx2", "1.2%", "3.8%", "12.8%"]);
/// let s = t.to_string();
/// assert!(s.contains("ibmqx2"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned, the rest right-aligned (override with
    /// [`Table::with_aligns`]).
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        let mut aligns = vec![Align::Right; headers.len()];
        aligns[0] = Align::Left;
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the number of columns.
    #[must_use]
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row of pre-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the number of columns.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row from owned strings (convenient with `format!`).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the number of columns.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// The number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                let pad = widths[i] - cell.chars().count();
                match self.aligns[i] {
                    Align::Left => write!(f, "{cell}{}", " ".repeat(pad))?,
                    Align::Right => write!(f, "{}{cell}", " ".repeat(pad))?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a probability as a fixed-precision string (e.g. `0.3841`).
pub fn fmt_prob(p: f64) -> String {
    format!("{p:.4}")
}

/// Formats a ratio/improvement factor (e.g. `1.94x`), rendering infinities
/// as `inf`.
pub fn fmt_ratio(r: f64) -> String {
    if r.is_infinite() {
        "inf".to_string()
    } else {
        format!("{r:.2}x")
    }
}

/// Formats a percentage with one decimal (e.g. `12.8%`).
pub fn fmt_pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]).row(&["longer", "22"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        let w = lines[0].len();
        assert!(lines
            .iter()
            .all(|l| l.len() == w || l.trim_end().len() <= w));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn right_alignment_pads_left() {
        let mut t = Table::new(&["k", "num"]);
        t.row(&["x", "5"]);
        let s = t.to_string();
        // "num" header is width 3; value 5 should be right-aligned under it.
        assert!(s.lines().last().unwrap().ends_with("  5"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_prob(0.38415), "0.3841");
        assert_eq!(fmt_ratio(1.938), "1.94x");
        assert_eq!(fmt_ratio(f64::INFINITY), "inf");
        assert_eq!(fmt_pct(0.128), "12.8%");
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn wrong_cell_count_panics() {
        Table::new(&["a", "b"]).row(&["only one"]);
    }

    #[test]
    fn row_owned_accepts_format_output() {
        let mut t = Table::new(&["a", "b"]);
        t.row_owned(vec![format!("{}", 1), fmt_prob(0.5)]);
        assert_eq!(t.n_rows(), 1);
    }
}
