//! Lock-free operational counters for long-lived hosts.
//!
//! The mitigation service (and any future daemon built on this workspace)
//! needs cheap always-on observability: request and job totals, cache
//! effectiveness, backpressure rejections, queue depth, and latency. A
//! [`ServiceCounters`] is a bundle of atomics safe to share across worker
//! threads; [`ServiceCounters::snapshot`] captures a consistent-enough view
//! for a status endpoint, and the snapshot renders as a [`Table`] for
//! human consumption.

use crate::table::Table;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters and gauges for a request-serving process.
///
/// All updates are `Relaxed` atomics: the counters are statistics, not
/// synchronization, and must never contend on the hot path.
///
/// # Examples
///
/// ```
/// use qmetrics::ServiceCounters;
///
/// let c = ServiceCounters::new();
/// c.inc_requests();
/// c.inc_cache_miss();
/// c.record_latency_us(1500);
/// let snap = c.snapshot();
/// assert_eq!(snap.requests, 1);
/// assert_eq!(snap.cache_misses, 1);
/// assert_eq!(snap.latency_max_us, 1500);
/// ```
#[derive(Debug, Default)]
pub struct ServiceCounters {
    requests: AtomicU64,
    jobs_executed: AtomicU64,
    jobs_failed: AtomicU64,
    busy_rejections: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    queue_depth_peak: AtomicU64,
    latency_us_total: AtomicU64,
    latency_us_max: AtomicU64,
    faults_injected: AtomicU64,
    retries: AtomicU64,
    degraded_responses: AtomicU64,
    deadline_expirations: AtomicU64,
    connections_reaped: AtomicU64,
    breaker_trips: AtomicU64,
    journal_checkpoints: AtomicU64,
    resumed_jobs: AtomicU64,
    profiles_quarantined: AtomicU64,
    invariant_clamps: AtomicU64,
    pool_tasks: AtomicU64,
    barrier_waits: AtomicU64,
    arena_reuse_hits: AtomicU64,
    epoll_wakeups: AtomicU64,
    frames_parsed: AtomicU64,
    write_backpressure_events: AtomicU64,
    shard_depth_peak: AtomicU64,
    queue_steals: AtomicU64,
    forwards: AtomicU64,
    replication_writes: AtomicU64,
    failovers: AtomicU64,
    heartbeats_missed: AtomicU64,
    stale_map_retries: AtomicU64,
    requests_shed: AtomicU64,
    retry_budget_exhausted: AtomicU64,
    peer_dials_suppressed: AtomicU64,
    net_faults_injected: AtomicU64,
    partitions_healed: AtomicU64,
}

/// A point-in-time copy of a [`ServiceCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the documentation
pub struct CountersSnapshot {
    pub requests: u64,
    pub jobs_executed: u64,
    pub jobs_failed: u64,
    pub busy_rejections: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub queue_depth_peak: u64,
    pub latency_total_us: u64,
    pub latency_max_us: u64,
    pub faults_injected: u64,
    pub retries: u64,
    pub degraded_responses: u64,
    pub deadline_expirations: u64,
    pub connections_reaped: u64,
    pub breaker_trips: u64,
    pub journal_checkpoints: u64,
    pub resumed_jobs: u64,
    pub profiles_quarantined: u64,
    pub invariant_clamps: u64,
    pub pool_tasks: u64,
    pub barrier_waits: u64,
    pub arena_reuse_hits: u64,
    pub epoll_wakeups: u64,
    pub frames_parsed: u64,
    pub write_backpressure_events: u64,
    pub shard_depth_peak: u64,
    pub queue_steals: u64,
    pub forwards: u64,
    pub replication_writes: u64,
    pub failovers: u64,
    pub heartbeats_missed: u64,
    pub stale_map_retries: u64,
    pub requests_shed: u64,
    pub retry_budget_exhausted: u64,
    pub peer_dials_suppressed: u64,
    pub net_faults_injected: u64,
    pub partitions_healed: u64,
}

impl ServiceCounters {
    /// Creates a zeroed counter bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one received request (of any kind, accepted or rejected).
    pub fn inc_requests(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one job executed to completion by a worker.
    pub fn inc_jobs_executed(&self) {
        self.jobs_executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one job that reached a worker but failed.
    pub fn inc_jobs_failed(&self) {
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request turned away because the queue was full.
    pub fn inc_busy_rejection(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one profile served from cache.
    pub fn inc_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one profile that had to be (re)measured.
    pub fn inc_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an observed queue depth, keeping the high-water mark.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one request's end-to-end latency in microseconds.
    pub fn record_latency_us(&self, us: u64) {
        self.latency_us_total.fetch_add(us, Ordering::Relaxed);
        self.latency_us_max.fetch_max(us, Ordering::Relaxed);
    }

    /// Publishes the fault-injection total (a gauge owned by the fault
    /// plan, mirrored here so one snapshot carries everything).
    pub fn set_faults_injected(&self, total: u64) {
        self.faults_injected.store(total, Ordering::Relaxed);
    }

    /// Counts one retry of a transient characterization failure.
    pub fn inc_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one response served degraded (stale last-good profile).
    pub fn inc_degraded_response(&self) {
        self.degraded_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one job answered 504 because its deadline expired in queue.
    pub fn inc_deadline_expiration(&self) {
        self.deadline_expirations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one idle or hung connection closed by the reaper.
    pub fn inc_connection_reaped(&self) {
        self.connections_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one circuit breaker opening (failures or drift trips).
    pub fn inc_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` characterization checkpoints appended to a journal.
    pub fn add_journal_checkpoints(&self, n: u64) {
        if n > 0 {
            self.journal_checkpoints.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one characterization job that resumed an in-flight journal
    /// instead of starting from scratch.
    pub fn inc_resumed_job(&self) {
        self.resumed_jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one damaged profile moved aside to a quarantine path.
    pub fn inc_profile_quarantined(&self) {
        self.profiles_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the invariant-clamp total (a gauge owned by the core
    /// validation ledger, mirrored here like the fault-injection total).
    pub fn set_invariant_clamps(&self, total: u64) {
        self.invariant_clamps.store(total, Ordering::Relaxed);
    }

    /// Publishes the simulator worker-pool task total (a gauge owned by
    /// `qsim::pool`, mirrored here so one snapshot carries everything).
    pub fn set_pool_tasks(&self, total: u64) {
        self.pool_tasks.store(total, Ordering::Relaxed);
    }

    /// Publishes the simulator barrier-episode total (a gauge owned by
    /// `qsim::pool`).
    pub fn set_barrier_waits(&self, total: u64) {
        self.barrier_waits.store(total, Ordering::Relaxed);
    }

    /// Publishes the statevector arena reuse total (a gauge owned by
    /// `qsim::arena`).
    pub fn set_arena_reuse_hits(&self, total: u64) {
        self.arena_reuse_hits.store(total, Ordering::Relaxed);
    }

    /// Counts one return from the event loop's readiness wait (an
    /// `epoll_wait` wakeup, or its portable-fallback equivalent).
    pub fn inc_epoll_wakeup(&self) {
        self.epoll_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` newline-delimited frames extracted by the incremental
    /// parser (including blank keep-alive frames).
    pub fn add_frames_parsed(&self, n: u64) {
        if n > 0 {
            self.frames_parsed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one transition of a connection into write backpressure (the
    /// socket refused bytes and the response stayed buffered until the
    /// poller reported writability).
    pub fn inc_write_backpressure_event(&self) {
        self.write_backpressure_events
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records an observed per-shard run-queue depth, keeping the
    /// high-water mark across all shards.
    pub fn observe_shard_depth(&self, depth: u64) {
        self.shard_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Publishes the cross-shard work-steal total (a gauge owned by the
    /// sharded run queue, mirrored here like the fault-injection total).
    pub fn set_queue_steals(&self, total: u64) {
        self.queue_steals.store(total, Ordering::Relaxed);
    }

    /// Counts one request forwarded to the owning node of its device.
    pub fn inc_forward(&self) {
        self.forwards.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one profile or journal replica installed from a peer node.
    pub fn inc_replication_write(&self) {
        self.replication_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one ownership takeover: this node served a device whose
    /// owner was dead or unreachable.
    pub fn inc_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one heartbeat probe that went unanswered.
    pub fn inc_heartbeat_missed(&self) {
        self.heartbeats_missed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request that arrived at a node which neither owns nor
    /// follows the device — the sender routed on a stale cluster map.
    pub fn inc_stale_map_retry(&self) {
        self.stale_map_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one queued work job evicted by overload shedding to admit
    /// newer work (the victim's deadline was already impossible).
    pub fn inc_requests_shed(&self) {
        self.requests_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the retry-budget denial total (a gauge owned by the
    /// node's `RetryBudget`, mirrored here like the fault-injection
    /// total).
    pub fn set_retry_budget_exhausted(&self, total: u64) {
        self.retry_budget_exhausted.store(total, Ordering::Relaxed);
    }

    /// Publishes the suppressed-dial total (a gauge owned by the
    /// per-peer `DialGate`).
    pub fn set_peer_dials_suppressed(&self, total: u64) {
        self.peer_dials_suppressed.store(total, Ordering::Relaxed);
    }

    /// Publishes the network fault-injection total (a gauge owned by the
    /// node's `NetFaultPlan`, distinct from the request-level
    /// `faults_injected`).
    pub fn set_net_faults_injected(&self, total: u64) {
        self.net_faults_injected.store(total, Ordering::Relaxed);
    }

    /// Publishes the healed-partition total (a gauge owned by the node's
    /// `NetFaultPlan`).
    pub fn set_partitions_healed(&self, total: u64) {
        self.partitions_healed.store(total, Ordering::Relaxed);
    }

    /// Captures the current values.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            latency_total_us: self.latency_us_total.load(Ordering::Relaxed),
            latency_max_us: self.latency_us_max.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded_responses: self.degraded_responses.load(Ordering::Relaxed),
            deadline_expirations: self.deadline_expirations.load(Ordering::Relaxed),
            connections_reaped: self.connections_reaped.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            journal_checkpoints: self.journal_checkpoints.load(Ordering::Relaxed),
            resumed_jobs: self.resumed_jobs.load(Ordering::Relaxed),
            profiles_quarantined: self.profiles_quarantined.load(Ordering::Relaxed),
            invariant_clamps: self.invariant_clamps.load(Ordering::Relaxed),
            pool_tasks: self.pool_tasks.load(Ordering::Relaxed),
            barrier_waits: self.barrier_waits.load(Ordering::Relaxed),
            arena_reuse_hits: self.arena_reuse_hits.load(Ordering::Relaxed),
            epoll_wakeups: self.epoll_wakeups.load(Ordering::Relaxed),
            frames_parsed: self.frames_parsed.load(Ordering::Relaxed),
            write_backpressure_events: self.write_backpressure_events.load(Ordering::Relaxed),
            shard_depth_peak: self.shard_depth_peak.load(Ordering::Relaxed),
            queue_steals: self.queue_steals.load(Ordering::Relaxed),
            forwards: self.forwards.load(Ordering::Relaxed),
            replication_writes: self.replication_writes.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            heartbeats_missed: self.heartbeats_missed.load(Ordering::Relaxed),
            stale_map_retries: self.stale_map_retries.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            retry_budget_exhausted: self.retry_budget_exhausted.load(Ordering::Relaxed),
            peer_dials_suppressed: self.peer_dials_suppressed.load(Ordering::Relaxed),
            net_faults_injected: self.net_faults_injected.load(Ordering::Relaxed),
            partitions_healed: self.partitions_healed.load(Ordering::Relaxed),
        }
    }
}

impl CountersSnapshot {
    /// Mean per-job latency in microseconds (0 when nothing ran).
    pub fn latency_mean_us(&self) -> u64 {
        let jobs = self.jobs_executed + self.jobs_failed;
        self.latency_total_us.checked_div(jobs).unwrap_or(0)
    }

    /// Cache hit rate in `[0, 1]` (0 when the cache was never consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let looked = self.cache_hits + self.cache_misses;
        if looked == 0 {
            0.0
        } else {
            self.cache_hits as f64 / looked as f64
        }
    }

    /// Renders the snapshot as a two-column table.
    pub fn render(&self) -> Table {
        let mut t = Table::new(&["counter", "value"]);
        let rows: [(&str, String); 39] = [
            ("requests", self.requests.to_string()),
            ("jobs executed", self.jobs_executed.to_string()),
            ("jobs failed", self.jobs_failed.to_string()),
            ("busy rejections", self.busy_rejections.to_string()),
            ("cache hits", self.cache_hits.to_string()),
            ("cache misses", self.cache_misses.to_string()),
            ("cache hit rate", format!("{:.3}", self.cache_hit_rate())),
            ("queue depth peak", self.queue_depth_peak.to_string()),
            ("latency mean (us)", self.latency_mean_us().to_string()),
            ("latency max (us)", self.latency_max_us.to_string()),
            ("latency total (us)", self.latency_total_us.to_string()),
            ("faults injected", self.faults_injected.to_string()),
            ("retries", self.retries.to_string()),
            ("degraded responses", self.degraded_responses.to_string()),
            (
                "deadline expirations",
                self.deadline_expirations.to_string(),
            ),
            ("connections reaped", self.connections_reaped.to_string()),
            ("breaker trips", self.breaker_trips.to_string()),
            ("journal checkpoints", self.journal_checkpoints.to_string()),
            ("resumed jobs", self.resumed_jobs.to_string()),
            (
                "profiles quarantined",
                self.profiles_quarantined.to_string(),
            ),
            ("invariant clamps", self.invariant_clamps.to_string()),
            ("pool tasks", self.pool_tasks.to_string()),
            ("barrier waits", self.barrier_waits.to_string()),
            ("arena reuse hits", self.arena_reuse_hits.to_string()),
            ("epoll wakeups", self.epoll_wakeups.to_string()),
            ("frames parsed", self.frames_parsed.to_string()),
            (
                "write backpressure events",
                self.write_backpressure_events.to_string(),
            ),
            ("shard depth peak", self.shard_depth_peak.to_string()),
            ("queue steals", self.queue_steals.to_string()),
            ("forwards", self.forwards.to_string()),
            ("replication writes", self.replication_writes.to_string()),
            ("failovers", self.failovers.to_string()),
            ("heartbeats missed", self.heartbeats_missed.to_string()),
            ("stale map retries", self.stale_map_retries.to_string()),
            ("requests shed", self.requests_shed.to_string()),
            (
                "retry budget exhausted",
                self.retry_budget_exhausted.to_string(),
            ),
            (
                "peer dials suppressed",
                self.peer_dials_suppressed.to_string(),
            ),
            ("net faults injected", self.net_faults_injected.to_string()),
            ("partitions healed", self.partitions_healed.to_string()),
        ];
        for (k, v) in rows {
            t.row_owned(vec![k.to_string(), v]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = ServiceCounters::new();
        for _ in 0..3 {
            c.inc_requests();
        }
        c.inc_jobs_executed();
        c.inc_jobs_executed();
        c.inc_jobs_failed();
        c.inc_busy_rejection();
        c.inc_cache_hit();
        c.inc_cache_hit();
        c.inc_cache_hit();
        c.inc_cache_miss();
        c.observe_queue_depth(2);
        c.observe_queue_depth(7);
        c.observe_queue_depth(4);
        c.record_latency_us(100);
        c.record_latency_us(500);
        c.record_latency_us(300);
        c.set_faults_injected(4);
        c.inc_retry();
        c.inc_retry();
        c.inc_degraded_response();
        c.inc_deadline_expiration();
        c.inc_connection_reaped();
        c.inc_breaker_trip();
        c.add_journal_checkpoints(5);
        c.add_journal_checkpoints(0);
        c.inc_resumed_job();
        c.inc_profile_quarantined();
        c.set_invariant_clamps(3);
        c.set_pool_tasks(12);
        c.set_barrier_waits(34);
        c.set_arena_reuse_hits(56);
        c.inc_epoll_wakeup();
        c.inc_epoll_wakeup();
        c.add_frames_parsed(6);
        c.add_frames_parsed(0);
        c.inc_write_backpressure_event();
        c.observe_shard_depth(3);
        c.observe_shard_depth(9);
        c.observe_shard_depth(5);
        c.set_queue_steals(11);
        c.inc_forward();
        c.inc_forward();
        c.inc_replication_write();
        c.inc_failover();
        c.inc_heartbeat_missed();
        c.inc_heartbeat_missed();
        c.inc_heartbeat_missed();
        c.inc_stale_map_retry();
        c.inc_requests_shed();
        c.inc_requests_shed();
        c.set_retry_budget_exhausted(7);
        c.set_peer_dials_suppressed(4);
        c.set_net_faults_injected(9);
        c.set_partitions_healed(1);

        let s = c.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.jobs_executed, 2);
        assert_eq!(s.jobs_failed, 1);
        assert_eq!(s.busy_rejections, 1);
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.queue_depth_peak, 7);
        assert_eq!(s.latency_max_us, 500);
        assert_eq!(s.latency_mean_us(), 900 / 3);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.faults_injected, 4);
        assert_eq!(s.retries, 2);
        assert_eq!(s.degraded_responses, 1);
        assert_eq!(s.deadline_expirations, 1);
        assert_eq!(s.connections_reaped, 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.journal_checkpoints, 5);
        assert_eq!(s.resumed_jobs, 1);
        assert_eq!(s.profiles_quarantined, 1);
        assert_eq!(s.invariant_clamps, 3);
        assert_eq!(s.pool_tasks, 12);
        assert_eq!(s.barrier_waits, 34);
        assert_eq!(s.arena_reuse_hits, 56);
        assert_eq!(s.epoll_wakeups, 2);
        assert_eq!(s.frames_parsed, 6);
        assert_eq!(s.write_backpressure_events, 1);
        assert_eq!(s.shard_depth_peak, 9);
        assert_eq!(s.queue_steals, 11);
        assert_eq!(s.forwards, 2);
        assert_eq!(s.replication_writes, 1);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.heartbeats_missed, 3);
        assert_eq!(s.stale_map_retries, 1);
        assert_eq!(s.requests_shed, 2);
        assert_eq!(s.retry_budget_exhausted, 7);
        assert_eq!(s.peer_dials_suppressed, 4);
        assert_eq!(s.net_faults_injected, 9);
        assert_eq!(s.partitions_healed, 1);
    }

    #[test]
    fn zero_division_guards() {
        let s = ServiceCounters::new().snapshot();
        assert_eq!(s.latency_mean_us(), 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let c = Arc::new(ServiceCounters::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc_requests();
                        c.record_latency_us(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.requests, 8000);
        assert_eq!(s.latency_total_us, 8000);
    }

    #[test]
    fn render_includes_every_counter() {
        let text = ServiceCounters::new().snapshot().render().to_string();
        for key in [
            "requests",
            "cache hit rate",
            "busy rejections",
            "latency max",
            "faults injected",
            "retries",
            "degraded responses",
            "deadline expirations",
            "connections reaped",
            "breaker trips",
            "journal checkpoints",
            "resumed jobs",
            "profiles quarantined",
            "invariant clamps",
            "pool tasks",
            "barrier waits",
            "arena reuse hits",
            "epoll wakeups",
            "frames parsed",
            "write backpressure events",
            "shard depth peak",
            "queue steals",
            "forwards",
            "replication writes",
            "failovers",
            "heartbeats missed",
            "stale map retries",
            "requests shed",
            "retry budget exhausted",
            "peer dials suppressed",
            "net faults injected",
            "partitions healed",
        ] {
            assert!(text.contains(key), "{key} missing from:\n{text}");
        }
    }
}
