//! The paper's three reliability metrics (§4.2).
//!
//! * **PST** — Probability of a Successful Trial: the fraction of logged
//!   trials whose output is a correct answer.
//! * **IST** — Inference Strength: the ratio of the correct answer's
//!   frequency to the strongest *incorrect* answer's frequency. The correct
//!   answer tops the output log exactly when IST > 1.
//! * **ROCA** — Rank of the Correct Answer in the frequency-sorted log
//!   (1 = most frequent). For optimization workloads where the top-K
//!   outputs are classically re-checked, a small ROCA is what matters.
//!
//! Some benchmarks have several acceptable answers (QAOA max-cut accepts a
//! partition and its complement, §4.2.1), so every metric takes a *set* of
//! correct outputs.

use qsim::{BitString, Counts};

/// The set of outputs considered correct for a benchmark instance.
///
/// # Examples
///
/// ```
/// use qmetrics::CorrectSet;
///
/// // QAOA max-cut: a partition and its complement are the same cut.
/// let correct = CorrectSet::with_complement("0111".parse()?);
/// assert_eq!(correct.outputs().len(), 2);
/// assert!(correct.contains(&"1000".parse()?));
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectSet {
    outputs: Vec<BitString>,
}

impl CorrectSet {
    /// A single correct output (e.g. the Bernstein-Vazirani secret key).
    pub fn single(output: BitString) -> Self {
        CorrectSet {
            outputs: vec![output],
        }
    }

    /// A correct output together with its bitwise complement (QAOA cuts).
    pub fn with_complement(output: BitString) -> Self {
        let inv = output.inverted();
        if inv == output {
            CorrectSet::single(output)
        } else {
            CorrectSet {
                outputs: vec![output, inv],
            }
        }
    }

    /// An explicit set of correct outputs.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty, contains duplicates, or mixes widths.
    pub fn new(outputs: Vec<BitString>) -> Self {
        assert!(!outputs.is_empty(), "need at least one correct output");
        let w = outputs[0].width();
        for (i, s) in outputs.iter().enumerate() {
            assert_eq!(s.width(), w, "mixed widths in correct set");
            assert!(!outputs[..i].contains(s), "duplicate correct output {s}");
        }
        CorrectSet { outputs }
    }

    /// The correct outputs.
    pub fn outputs(&self) -> &[BitString] {
        &self.outputs
    }

    /// The register width.
    pub fn width(&self) -> usize {
        self.outputs[0].width()
    }

    /// Whether `s` is a correct output.
    pub fn contains(&self, s: &BitString) -> bool {
        self.outputs.contains(s)
    }
}

impl From<BitString> for CorrectSet {
    fn from(s: BitString) -> Self {
        CorrectSet::single(s)
    }
}

/// Probability of a Successful Trial: cumulative frequency of the correct
/// outputs in the log.
///
/// Returns 0 for an empty log.
///
/// # Panics
///
/// Panics if the log and correct-set widths differ.
///
/// # Examples
///
/// ```
/// use qmetrics::{pst, CorrectSet};
/// use qsim::Counts;
///
/// let mut log = Counts::new(2);
/// log.record_n("01".parse()?, 60);
/// log.record_n("11".parse()?, 40);
/// let p = pst(&log, &CorrectSet::single("01".parse()?));
/// assert!((p - 0.6).abs() < 1e-12);
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
pub fn pst(log: &Counts, correct: &CorrectSet) -> f64 {
    assert_eq!(log.width(), correct.width(), "width mismatch");
    correct.outputs().iter().map(|s| log.frequency(s)).sum()
}

/// Inference Strength: frequency of the correct answer over the frequency
/// of the strongest incorrect answer.
///
/// Conventions for degenerate logs: if no incorrect output was ever
/// observed, the correct answer is unmasked and IST is `f64::INFINITY`
/// (unless the correct answer also never appeared, in which case IST is 0).
///
/// # Panics
///
/// Panics if the log and correct-set widths differ.
pub fn ist(log: &Counts, correct: &CorrectSet) -> f64 {
    assert_eq!(log.width(), correct.width(), "width mismatch");
    let correct_freq = pst(log, correct);
    let strongest_wrong = log
        .iter()
        .filter(|(s, _)| !correct.contains(s))
        .map(|(_, &n)| n)
        .max()
        .unwrap_or(0);
    if strongest_wrong == 0 {
        if correct_freq > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        let wrong_freq = strongest_wrong as f64 / log.total() as f64;
        correct_freq / wrong_freq
    }
}

/// Rank of the Correct Answer: position (1-based) of the best correct
/// output in the frequency-sorted log. Every *distinct incorrect* output
/// with a strictly higher count than the best correct output pushes the
/// rank down by one.
///
/// Returns `None` if no correct output was ever observed.
///
/// # Panics
///
/// Panics if the log and correct-set widths differ.
pub fn roca(log: &Counts, correct: &CorrectSet) -> Option<usize> {
    assert_eq!(log.width(), correct.width(), "width mismatch");
    let best_correct = correct
        .outputs()
        .iter()
        .map(|s| log.get(s))
        .max()
        .unwrap_or(0);
    if best_correct == 0 {
        return None;
    }
    let stronger = log
        .iter()
        .filter(|(s, &n)| !correct.contains(s) && n > best_correct)
        .count();
    Some(stronger + 1)
}

/// A bundle of all three metrics for one experiment, as reported in the
/// paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityReport {
    /// Probability of a Successful Trial.
    pub pst: f64,
    /// Inference Strength.
    pub ist: f64,
    /// Rank of the Correct Answer (`None` if never observed).
    pub roca: Option<usize>,
}

impl ReliabilityReport {
    /// Evaluates all three metrics on a log.
    ///
    /// # Panics
    ///
    /// Panics if the log and correct-set widths differ.
    pub fn evaluate(log: &Counts, correct: &CorrectSet) -> Self {
        ReliabilityReport {
            pst: pst(log, correct),
            ist: ist(log, correct),
            roca: roca(log, correct),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    fn log(entries: &[(&str, u64)]) -> Counts {
        let mut c = Counts::new(entries[0].0.len());
        for &(s, n) in entries {
            c.record_n(bs(s), n);
        }
        c
    }

    #[test]
    fn pst_basic() {
        let l = log(&[("00", 50), ("01", 30), ("11", 20)]);
        assert!((pst(&l, &bs("01").into()) - 0.3).abs() < 1e-12);
        assert_eq!(pst(&l, &bs("10").into()), 0.0);
    }

    #[test]
    fn pst_with_complement_sums_both() {
        let l = log(&[("0101", 30), ("1010", 20), ("0000", 50)]);
        let c = CorrectSet::with_complement(bs("0101"));
        assert!((pst(&l, &c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ist_above_one_means_correct_dominates() {
        let l = log(&[("01", 60), ("11", 40)]);
        assert!((ist(&l, &bs("01").into()) - 1.5).abs() < 1e-12);
        // Masked case from the paper's Figure 3(d): 0.30 vs 0.35.
        let l = log(&[("11", 30), ("01", 35), ("00", 20), ("10", 15)]);
        let v = ist(&l, &bs("11").into());
        assert!((v - 30.0 / 35.0).abs() < 1e-12);
        assert!(v < 1.0);
    }

    #[test]
    fn ist_degenerate_cases() {
        let l = log(&[("01", 10)]);
        assert_eq!(ist(&l, &bs("01").into()), f64::INFINITY);
        let empty = Counts::new(2);
        assert_eq!(ist(&empty, &bs("01").into()), 0.0);
        // Correct never observed but incorrect present.
        let l = log(&[("00", 10)]);
        assert_eq!(ist(&l, &bs("01").into()), 0.0);
    }

    #[test]
    fn roca_counts_stronger_incorrect_answers() {
        // Correct answer third-most frequent.
        let l = log(&[("000", 50), ("001", 40), ("101", 30), ("111", 10)]);
        assert_eq!(roca(&l, &bs("101").into()), Some(3));
        assert_eq!(roca(&l, &bs("000").into()), Some(1));
        assert_eq!(roca(&l, &bs("110").into()), None);
    }

    #[test]
    fn roca_ties_do_not_push_rank_down() {
        let l = log(&[("00", 30), ("01", 30), ("11", 30)]);
        assert_eq!(roca(&l, &bs("01").into()), Some(1));
    }

    #[test]
    fn roca_with_complement_uses_best() {
        let l = log(&[("110", 5), ("001", 40), ("010", 30)]);
        let c = CorrectSet::with_complement(bs("110"));
        // Complement 001 has 40 counts and tops the log.
        assert_eq!(roca(&l, &c), Some(1));
    }

    #[test]
    fn with_complement_of_selfinverse_is_single() {
        // No 5-bit string is its own complement, but width-0 cannot exist;
        // construct via explicit check with an artificial equal case: only
        // possible if inverted() == self, which never happens for width >= 1.
        let c = CorrectSet::with_complement(bs("10"));
        assert_eq!(c.outputs().len(), 2);
    }

    #[test]
    fn report_bundles_everything() {
        let l = log(&[("01", 60), ("11", 40)]);
        let r = ReliabilityReport::evaluate(&l, &bs("01").into());
        assert!((r.pst - 0.6).abs() < 1e-12);
        assert!((r.ist - 1.5).abs() < 1e-12);
        assert_eq!(r.roca, Some(1));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn correct_set_rejects_duplicates() {
        CorrectSet::new(vec![bs("01"), bs("01")]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn pst_width_mismatch_panics() {
        pst(&Counts::new(3), &bs("01").into());
    }
}
