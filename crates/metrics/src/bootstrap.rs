//! Bootstrap confidence intervals for shot-based metrics.
//!
//! The paper reports point estimates over 16k–32k trials; when comparing
//! policies at reduced shot budgets (as the fast test configurations do)
//! sampling error matters. This module resamples an output log with
//! replacement and reports percentile confidence intervals for any
//! log-derived statistic, plus a convenience wrapper for PST.

use crate::reliability::{pst, CorrectSet};
use qsim::{BitString, Counts};
use rand::Rng;

/// A bootstrap estimate: point value plus a percentile interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapEstimate {
    /// The statistic on the original log.
    pub point: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
}

impl BootstrapEstimate {
    /// Whether another estimate's interval is disjoint above this one —
    /// i.e. the improvement is resolvable at the chosen confidence.
    pub fn clearly_below(&self, other: &BootstrapEstimate) -> bool {
        self.upper < other.lower
    }
}

/// Bootstraps an arbitrary statistic of an output log.
///
/// Resamples `log.total()` trials with replacement `resamples` times and
/// returns the `confidence` percentile interval (e.g. `0.95` for a 95 %
/// interval).
///
/// # Panics
///
/// Panics if the log is empty, `resamples` is 0, or `confidence` is
/// outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use qmetrics::bootstrap_statistic;
/// use qsim::Counts;
/// use rand::SeedableRng;
///
/// let mut log = Counts::new(1);
/// log.record_n("1".parse()?, 800);
/// log.record_n("0".parse()?, 200);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let est = bootstrap_statistic(&log, 200, 0.95, &mut rng, |l| {
///     l.frequency(&"1".parse().unwrap())
/// });
/// assert!(est.lower <= 0.8 && 0.8 <= est.upper);
/// assert!(est.upper - est.lower < 0.1);
/// # Ok::<(), qsim::ParseBitStringError>(())
/// ```
pub fn bootstrap_statistic<R, F>(
    log: &Counts,
    resamples: usize,
    confidence: f64,
    rng: &mut R,
    statistic: F,
) -> BootstrapEstimate
where
    R: Rng + ?Sized,
    F: Fn(&Counts) -> f64,
{
    assert!(log.total() > 0, "cannot bootstrap an empty log");
    assert!(resamples >= 1, "need at least one resample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let point = statistic(log);

    // Flatten the log into (outcome, cumulative count) for O(log k)
    // inverse-CDF sampling, in deterministic (value) order so results are
    // reproducible across HashMap iteration orders.
    let outcomes: Vec<(BitString, u64)> = {
        let mut v: Vec<(BitString, u64)> = log.iter().map(|(s, &n)| (*s, n)).collect();
        v.sort_by_key(|&(s, _)| s.value());
        let mut acc = 0u64;
        for entry in &mut v {
            acc += entry.1;
            entry.1 = acc;
        }
        v
    };
    let total = log.total();

    let mut values: Vec<f64> = (0..resamples)
        .map(|_| {
            let mut resample = Counts::new(log.width());
            for _ in 0..total {
                let u = rng.gen_range(0..total);
                let idx = outcomes.partition_point(|&(_, cum)| cum <= u);
                resample.record(outcomes[idx].0);
            }
            statistic(&resample)
        })
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite statistic"));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((resamples as f64) * alpha).floor() as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)).ceil() as usize).min(resamples) - 1;
    BootstrapEstimate {
        point,
        lower: values[lo_idx.min(resamples - 1)],
        upper: values[hi_idx],
    }
}

/// Bootstraps the PST of a log.
///
/// # Panics
///
/// As [`bootstrap_statistic`], plus a width mismatch between log and
/// correct set.
pub fn bootstrap_pst<R: Rng + ?Sized>(
    log: &Counts,
    correct: &CorrectSet,
    resamples: usize,
    confidence: f64,
    rng: &mut R,
) -> BootstrapEstimate {
    bootstrap_statistic(log, resamples, confidence, rng, |l| pst(l, correct))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn interval_contains_truth_for_binomial() {
        let mut log = Counts::new(1);
        log.record_n(bs("1"), 600);
        log.record_n(bs("0"), 400);
        let mut rng = StdRng::seed_from_u64(1);
        let est = bootstrap_pst(&log, &CorrectSet::single(bs("1")), 300, 0.95, &mut rng);
        assert!((est.point - 0.6).abs() < 1e-12);
        assert!(est.lower < 0.6 && 0.6 < est.upper);
        // 95% binomial CI at n=1000, p=0.6 is roughly ±0.03.
        assert!(est.upper - est.lower < 0.08, "interval too wide: {est:?}");
        assert!(est.upper - est.lower > 0.02, "interval too tight: {est:?}");
    }

    #[test]
    fn interval_shrinks_with_more_trials() {
        let mut rng = StdRng::seed_from_u64(2);
        let width_at = |n: u64, rng: &mut StdRng| {
            let mut log = Counts::new(1);
            log.record_n(bs("1"), n / 2);
            log.record_n(bs("0"), n / 2);
            let est = bootstrap_pst(&log, &CorrectSet::single(bs("1")), 200, 0.9, rng);
            est.upper - est.lower
        };
        let wide = width_at(100, &mut rng);
        let narrow = width_at(10_000, &mut rng);
        assert!(
            narrow < wide / 3.0,
            "interval should shrink ~sqrt(n): {wide} -> {narrow}"
        );
    }

    #[test]
    fn degenerate_log_has_zero_width_interval() {
        let mut log = Counts::new(2);
        log.record_n(bs("01"), 50);
        let mut rng = StdRng::seed_from_u64(3);
        let est = bootstrap_pst(&log, &CorrectSet::single(bs("01")), 100, 0.95, &mut rng);
        assert_eq!(est.point, 1.0);
        assert_eq!(est.lower, 1.0);
        assert_eq!(est.upper, 1.0);
    }

    #[test]
    fn clearly_below_detects_separation() {
        let a = BootstrapEstimate {
            point: 0.2,
            lower: 0.15,
            upper: 0.25,
        };
        let b = BootstrapEstimate {
            point: 0.5,
            lower: 0.45,
            upper: 0.55,
        };
        assert!(a.clearly_below(&b));
        assert!(!b.clearly_below(&a));
        let overlapping = BootstrapEstimate {
            point: 0.3,
            lower: 0.22,
            upper: 0.4,
        };
        assert!(!a.clearly_below(&overlapping));
    }

    #[test]
    fn custom_statistic() {
        let mut log = Counts::new(2);
        log.record_n(bs("11"), 30);
        log.record_n(bs("00"), 70);
        let mut rng = StdRng::seed_from_u64(4);
        let est = bootstrap_statistic(&log, 100, 0.9, &mut rng, |l| {
            l.ranked()
                .first()
                .map(|&(s, _)| s.hamming_weight() as f64)
                .unwrap_or(0.0)
        });
        // Mode is 00 with overwhelming probability.
        assert_eq!(est.point, 0.0);
        assert_eq!(est.upper, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty log")]
    fn empty_log_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        bootstrap_pst(
            &Counts::new(1),
            &CorrectSet::single(bs("1")),
            10,
            0.9,
            &mut rng,
        );
    }
}
