//! Statistical helpers for characterization data.
//!
//! The paper quantifies the measurement bias with simple statistics: the
//! Pearson correlation between Hamming weight and measurement strength
//! (−0.93 on ibmqx2, §3.1), mean-squared error between characterization
//! techniques (≤ 5 % for ESCT, Appendix A), and min/avg/max summaries
//! (Table 1). This module provides those, plus Hamming-weight grouping for
//! the Figure 5 style "average strength per weight class" series.

use qsim::BitString;

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 when either sample has zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than 2 points.
///
/// # Examples
///
/// ```
/// use qmetrics::pearson_correlation;
///
/// let x = [0.0, 1.0, 2.0, 3.0];
/// let y = [3.0, 2.0, 1.0, 0.0];
/// assert!((pearson_correlation(&x, &y) + 1.0).abs() < 1e-12);
/// ```
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "sample length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Mean squared error between two equal-length series.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn mean_squared_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sample length mismatch");
    assert!(!a.is_empty(), "need at least one point");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        / a.len() as f64
}

/// Root-mean-squared error between two equal-length series.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn rms_error(a: &[f64], b: &[f64]) -> f64 {
    mean_squared_error(a, b).sqrt()
}

/// Min, mean, and max of a non-empty sample.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn min_avg_max(values: &[f64]) -> (f64, f64, f64) {
    assert!(!values.is_empty(), "need at least one value");
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let avg = values.iter().sum::<f64>() / values.len() as f64;
    (min, avg, max)
}

/// Groups a per-state series by Hamming weight and averages each class —
/// the Figure 5 presentation. `values[i]` must correspond to the basis
/// state with numeric value `i`.
///
/// Returns a vector of length `width + 1`; entry `w` is the average over
/// all states of weight `w`.
///
/// # Panics
///
/// Panics if `values.len() != 2^width`.
pub fn average_by_hamming_weight(width: usize, values: &[f64]) -> Vec<f64> {
    assert_eq!(values.len(), 1usize << width, "length must be 2^width");
    let mut sums = vec![0.0; width + 1];
    let mut counts = vec![0u64; width + 1];
    for (i, &v) in values.iter().enumerate() {
        let w = (i as u64).count_ones() as usize;
        sums[w] += v;
        counts[w] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| s / c as f64)
        .collect()
}

/// The Pearson correlation between a per-state series and the states'
/// Hamming weights — the paper's headline bias statistic (−0.93 on
/// ibmqx2).
///
/// # Panics
///
/// Panics if `values.len() != 2^width`.
pub fn hamming_weight_correlation(width: usize, values: &[f64]) -> f64 {
    assert_eq!(values.len(), 1usize << width, "length must be 2^width");
    let weights: Vec<f64> = (0..values.len())
        .map(|i| (i as u64).count_ones() as f64)
        .collect();
    pearson_correlation(&weights, values)
}

/// Normalizes a per-state strength series so its maximum is 1 — the
/// paper's "relative" BMS presentation (Figures 4, 5, 11).
///
/// # Panics
///
/// Panics if the slice is empty or its maximum is not positive.
pub fn normalize_to_max(values: &[f64]) -> Vec<f64> {
    let (_, _, max) = min_avg_max(values);
    assert!(max > 0.0, "maximum must be positive to normalize");
    values.iter().map(|&v| v / max).collect()
}

/// Orders a per-state series along the paper's x-axis (ascending Hamming
/// weight, then ascending value), returning `(state, value)` pairs.
///
/// # Panics
///
/// Panics if `values.len() != 2^width`.
pub fn in_hamming_axis_order(width: usize, values: &[f64]) -> Vec<(BitString, f64)> {
    assert_eq!(values.len(), 1usize << width, "length must be 2^width");
    BitString::all_by_hamming_weight(width)
        .into_iter()
        .map(|s| (s, values[s.index()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_extremes() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson_correlation(&x, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson_correlation(&x, &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_zero_variance_is_zero() {
        assert_eq!(pearson_correlation(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn correlation_is_symmetric() {
        let x = [0.3, 1.9, -0.5, 2.2];
        let y = [1.0, 0.1, 0.7, -0.2];
        assert!((pearson_correlation(&x, &y) - pearson_correlation(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn mse_and_rms() {
        let a = [1.0, 2.0];
        let b = [1.0, 4.0];
        assert!((mean_squared_error(&a, &b) - 2.0).abs() < 1e-12);
        assert!((rms_error(&a, &b) - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean_squared_error(&a, &a), 0.0);
    }

    #[test]
    fn min_avg_max_summary() {
        let (min, avg, max) = min_avg_max(&[3.0, 1.0, 2.0]);
        assert_eq!(min, 1.0);
        assert_eq!(avg, 2.0);
        assert_eq!(max, 3.0);
    }

    #[test]
    fn hamming_grouping() {
        // width 2: states 00, 01, 10, 11 -> weights 0, 1, 1, 2.
        let avg = average_by_hamming_weight(2, &[1.0, 0.8, 0.6, 0.4]);
        assert_eq!(avg.len(), 3);
        assert!((avg[0] - 1.0).abs() < 1e-12);
        assert!((avg[1] - 0.7).abs() < 1e-12);
        assert!((avg[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn hamming_correlation_detects_bias() {
        // Strength falls exponentially with weight: strongly negative.
        let vals: Vec<f64> = (0..32)
            .map(|i| 0.9f64.powi((i as u64).count_ones() as i32))
            .collect();
        let r = hamming_weight_correlation(5, &vals);
        assert!(r < -0.95, "r = {r}");
        // Uniform strength: no correlation.
        assert_eq!(hamming_weight_correlation(5, &vec![0.5; 32]), 0.0);
    }

    #[test]
    fn normalization() {
        let n = normalize_to_max(&[0.2, 0.4, 0.8]);
        assert_eq!(n, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn axis_ordering() {
        let vals = [10.0, 11.0, 12.0, 13.0];
        let axis = in_hamming_axis_order(2, &vals);
        let states: Vec<String> = axis.iter().map(|(s, _)| s.to_string()).collect();
        assert_eq!(states, vec!["00", "01", "10", "11"]);
        assert_eq!(axis[1].1, 11.0);
        assert_eq!(axis[2].1, 12.0);
    }

    #[test]
    #[should_panic(expected = "length must be 2^width")]
    fn wrong_length_panics() {
        average_by_hamming_weight(3, &[0.0; 4]);
    }
}
