//! # qmetrics — reliability metrics for NISQ output logs
//!
//! Implements the paper's three application-level reliability metrics
//! (§4.2) plus the statistics used by its characterization sections:
//!
//! * [`pst`] — Probability of a Successful Trial,
//! * [`ist`] — Inference Strength (correct vs. strongest incorrect output),
//! * [`roca`] — Rank of the Correct Answer,
//! * [`pearson_correlation`], [`hamming_weight_correlation`],
//!   [`average_by_hamming_weight`] — the bias statistics of §3,
//! * [`Table`] — plain-text rendering for the reproduction harness,
//! * [`ServiceCounters`] — lock-free operational counters (requests, cache
//!   effectiveness, queue depth, latency) for long-lived hosts like the
//!   mitigation service.
//!
//! ## Example
//!
//! The paper's Figure 3(d) scenario — the correct answer is *masked* by a
//! stronger incorrect output:
//!
//! ```
//! use qmetrics::{ist, roca, CorrectSet};
//! use qsim::Counts;
//!
//! let mut log = Counts::new(2);
//! log.record_n("11".parse()?, 30); // correct
//! log.record_n("01".parse()?, 35); // strongest incorrect
//! log.record_n("00".parse()?, 20);
//! log.record_n("10".parse()?, 15);
//! let correct = CorrectSet::single("11".parse()?);
//! assert!(ist(&log, &correct) < 1.0);       // masked
//! assert_eq!(roca(&log, &correct), Some(2)); // second in the ranking
//! # Ok::<(), qsim::ParseBitStringError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bootstrap;
pub mod counters;
pub mod reliability;
pub mod stats;
pub mod table;

pub use bootstrap::{bootstrap_pst, bootstrap_statistic, BootstrapEstimate};
pub use counters::{CountersSnapshot, ServiceCounters};
pub use reliability::{ist, pst, roca, CorrectSet, ReliabilityReport};
pub use stats::{
    average_by_hamming_weight, hamming_weight_correlation, in_hamming_axis_order,
    mean_squared_error, min_avg_max, normalize_to_max, pearson_correlation, rms_error,
};
pub use table::{fmt_pct, fmt_prob, fmt_ratio, Align, Table};
