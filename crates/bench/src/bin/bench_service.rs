//! `bench-service` — the service-level load benchmark (ISSUE 7).
//!
//! Measures the mitigation server as a *service*: sustained request
//! throughput with latency percentiles under a deterministic open-loop
//! schedule, a connection-scaling ladder (how many concurrently-open
//! connections each front end sustains under an arrival-rate SLO), and
//! degraded-mode throughput with a device's circuit breaker forced open —
//! for both the event-loop front end and the thread-per-connection
//! baseline. Results land in `BENCH_service.json`.
//!
//! The server under test runs as a **child process** (this binary
//! re-executes itself with the hidden `__serve` mode): the client and
//! server each get their own fd budget, and the child's `/proc/<pid>/status`
//! gives an uncontaminated RSS reading at peak connection count.
//!
//! ```text
//! bench-service [--out FILE] [--connections N] [--requests N]
//!               [--rate HZ] [--pipeline K] [--shots N]
//!               [--ladder-max N] [--storm-rate HZ] [--slo-ms N]
//!               [--degraded-requests N]
//!               [--cluster HOST:PORT,HOST:PORT,...]
//! ```
//!
//! With `--cluster`, the benchmark targets an externally running profile
//! mesh instead of spawning child servers: it resolves the benchmark
//! device's serving node via the `cluster-map` op (client-side routing,
//! DESIGN.md §16), aims the load phase at it, and fails if any request
//! hits a transport error — the mesh must absorb the load without a
//! single dropped response.

use invmeas_service::{Json, Request, Response};
use qbenches::loadgen::{self, LoadConfig, Mix, Percentiles, StormConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

struct Opts {
    out: String,
    connections: usize,
    requests: usize,
    rate_hz: f64,
    pipeline: usize,
    shots: u64,
    ladder_max: usize,
    storm_rate_hz: f64,
    slo_ms: u64,
    degraded_requests: usize,
    cluster: Vec<SocketAddr>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            out: "BENCH_service.json".into(),
            connections: 128,
            requests: 12_000,
            rate_hz: 350.0,
            pipeline: 8,
            shots: 200,
            ladder_max: 131_072,
            storm_rate_hz: 4000.0,
            slo_ms: 1000,
            degraded_requests: 2000,
            cluster: Vec::new(),
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag {
            "--out" => o.out = val()?.to_string(),
            "--connections" => o.connections = num(flag, val()?)?,
            "--requests" => o.requests = num(flag, val()?)?,
            "--rate" => o.rate_hz = numf(flag, val()?)?,
            "--pipeline" => o.pipeline = num(flag, val()?)?,
            "--shots" => o.shots = num(flag, val()?)? as u64,
            "--ladder-max" => o.ladder_max = num(flag, val()?)?,
            "--storm-rate" => o.storm_rate_hz = numf(flag, val()?)?,
            "--slo-ms" => o.slo_ms = num(flag, val()?)? as u64,
            "--degraded-requests" => o.degraded_requests = num(flag, val()?)?,
            "--cluster" => {
                o.cluster = val()?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.parse()
                            .map_err(|e| format!("bad --cluster address {s:?}: {e}"))
                    })
                    .collect::<Result<Vec<SocketAddr>, String>>()?;
                if o.cluster.is_empty() {
                    return Err("--cluster needs at least one HOST:PORT seed".into());
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(o)
}

fn num(flag: &str, v: &str) -> Result<usize, String> {
    v.parse().map_err(|_| format!("{flag} needs an integer"))
}

fn numf(flag: &str, v: &str) -> Result<f64, String> {
    v.parse().map_err(|_| format!("{flag} needs a number"))
}

// ---------------------------------------------------------------------------
// The hidden server mode (`bench-service __serve ...`)
// ---------------------------------------------------------------------------

fn serve_child(args: &[String]) -> Result<(), String> {
    let mut event_loop = true;
    let mut degraded = false;
    let mut workers = 2usize;
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        match flag {
            "--event-loop" => {
                event_loop = match it.next() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => return Err("--event-loop needs on|off".into()),
                }
            }
            "--degraded" => degraded = true,
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--workers needs an integer")?
            }
            other => return Err(format!("unknown __serve flag {other:?}")),
        }
    }

    let mut config = invmeas_service::ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity: 2048,
        event_loop,
        profile_shots: 256,
        idle_timeout_ms: 120_000,
        ..invmeas_service::ServerConfig::default()
    };
    if degraded {
        // Force the ibmqx4 breaker open and keep it open: no retries, two
        // failures trip it, and the cooldown is far beyond the phase
        // length so no half-open probe ever closes it again.
        let mut plan = invmeas_faults::FaultPlan::new(7);
        for arrival in 2..=8 {
            plan = plan.on_nth(
                invmeas_faults::FaultSite::Characterize,
                arrival,
                invmeas_faults::Fault::Error("device offline".into()),
            );
        }
        config.retry_limit = 0;
        config.breaker_failure_threshold = 2;
        config.breaker_cooldown = 1_000_000;
        config.faults = std::sync::Arc::new(plan);
    }

    let server = invmeas_service::Server::bind(config).map_err(|e| e.to_string())?;
    // The parent parses this exact line for the ephemeral port.
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    server.serve().map_err(|e| e.to_string())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Child-server management
// ---------------------------------------------------------------------------

struct ServerChild {
    child: Child,
    addr: SocketAddr,
}

fn spawn_server(event_loop: bool, degraded: bool) -> Result<ServerChild, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut cmd = Command::new(exe);
    cmd.arg("__serve")
        .arg("--event-loop")
        .arg(if event_loop { "on" } else { "off" })
        .arg("--workers")
        .arg("2")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if degraded {
        cmd.arg("--degraded");
    }
    let mut child = cmd.spawn().map_err(|e| format!("spawn server: {e}"))?;
    let stdout = child.stdout.take().ok_or("no child stdout")?;
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .ok_or("server exited before announcing its port")?
        .map_err(|e| e.to_string())?;
    let addr: SocketAddr = first
        .strip_prefix("listening on ")
        .ok_or_else(|| format!("unexpected server banner {first:?}"))?
        .parse()
        .map_err(|e| format!("bad server address: {e}"))?;
    // Keep draining the child's stdout so its final prints never block.
    std::thread::spawn(move || for _ in lines {});
    Ok(ServerChild { child, addr })
}

impl ServerChild {
    /// Graceful protocol shutdown; `true` means the child drained and
    /// exited cleanly within the timeout.
    fn shutdown(mut self) -> bool {
        let acked = matches!(
            invmeas_service::call(self.addr, &Request::Shutdown),
            Ok(Response::Shutdown)
        );
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            match self.child.try_wait() {
                Ok(Some(status)) => return acked && status.success(),
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
        false
    }

    /// The child's resident set in bytes (`VmRSS` from `/proc`), or 0
    /// where procfs is unavailable.
    fn rss_bytes(&self) -> u64 {
        let path = format!("/proc/{}/status", self.child.id());
        let Ok(text) = std::fs::read_to_string(path) else {
            return 0;
        };
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("VmRSS:") {
                let kb: u64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return kb * 1024;
            }
        }
        0
    }
}

fn status_counters(addr: SocketAddr) -> Result<qmetrics::CountersSnapshot, String> {
    match invmeas_service::call(addr, &Request::Status) {
        Ok(Response::Status(s)) => Ok(s.counters),
        Ok(other) => Err(format!("unexpected status reply {other:?}")),
        Err(e) => Err(format!("status: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

struct LoadPhase {
    report: loadgen::LoadReport,
    counters: qmetrics::CountersSnapshot,
    clean_drain: bool,
}

fn load_phase(opts: &Opts, event_loop: bool) -> Result<LoadPhase, String> {
    let server = spawn_server(event_loop, false)?;
    let report = loadgen::run_load(&LoadConfig {
        addr: server.addr,
        connections: opts.connections,
        requests: opts.requests,
        rate_hz: opts.rate_hz,
        pipeline: opts.pipeline,
        seed: 2019,
        mix: Mix::default(),
        shots: opts.shots,
    })?;
    let counters = status_counters(server.addr)?;
    let clean_drain = server.shutdown();
    Ok(LoadPhase {
        report,
        counters,
        clean_drain,
    })
}

struct Rung {
    target: usize,
    report: loadgen::StormReport,
    rss_bytes: u64,
}

struct Ladder {
    rungs: Vec<Rung>,
    sustained: usize,
}

impl Ladder {
    /// p99 at the rung holding `target` connections (0 if never climbed).
    fn p99_at(&self, target: usize) -> u64 {
        self.rungs
            .iter()
            .find(|r| r.target == target)
            .map_or(0, |r| r.report.latency.p99_us)
    }
}

/// Climbs the connection ladder against one front end; a fresh server per
/// rung so thread/connection debris never carries over. Stops early once a
/// rung collapses (under half its connections inside the SLO).
fn ladder_phase(opts: &Opts, event_loop: bool) -> Result<Ladder, String> {
    let mut rungs = Vec::new();
    let mut sustained = 0usize;
    let mut target = 256usize;
    while target <= opts.ladder_max {
        let server = spawn_server(event_loop, false)?;
        let rss = std::sync::atomic::AtomicU64::new(0);
        let report = loadgen::run_storm(
            &StormConfig {
                addr: server.addr,
                connections: target,
                rate_hz: opts.storm_rate_hz,
                slo: Duration::from_millis(opts.slo_ms),
                workers: 64,
                background_connections: 8,
                background_shots: 100,
            },
            || rss.store(server.rss_bytes(), std::sync::atomic::Ordering::Relaxed),
        );
        server.shutdown();
        let ok_rate = report.ok_rate;
        eprintln!(
            "  [{}] {} conns: {:.1}% in SLO (p99 {:.1} ms)",
            if event_loop { "event-loop" } else { "threaded" },
            target,
            ok_rate * 100.0,
            report.latency.p99_us as f64 / 1000.0,
        );
        rungs.push(Rung {
            target,
            report,
            rss_bytes: rss.into_inner(),
        });
        if ok_rate >= 0.99 {
            sustained = target;
        }
        if ok_rate < 0.5 {
            break; // collapsed: higher rungs only waste wall-clock
        }
        target *= 2;
    }
    Ok(Ladder { rungs, sustained })
}

struct DegradedPhase {
    requests: usize,
    ok_degraded: u64,
    errors: u64,
    throughput_per_sec: f64,
    latency: Percentiles,
    open_breakers: u64,
    degraded_responses: u64,
    clean_drain: bool,
}

/// Degraded-mode throughput: trip the breaker, then measure how fast the
/// server serves the last good profile while the device stays dark.
fn degraded_phase(opts: &Opts) -> Result<DegradedPhase, String> {
    let server = spawn_server(true, true)?;
    let mut client =
        invmeas_service::Client::connect(server.addr).map_err(|e| format!("connect: {e}"))?;
    let characterize = Request::Characterize(invmeas_service::CharacterizeRequest {
        device: "ibmqx4".into(),
        method: invmeas_service::MethodKind::Brute,
        shots: 0,
        fwd: false,
    });

    // Arrival 1: clean warm-up so there is a last-good profile to serve.
    match client.request(&characterize) {
        Ok(Response::Characterize(_)) => {}
        other => return Err(format!("warm-up failed: {other:?}")),
    }
    // Invalidate it, then let the scripted failures trip the breaker.
    client
        .request(&Request::SetWindow {
            window: 1,
            fwd: false,
        })
        .map_err(|e| format!("set-window: {e}"))?;
    let mut trip_errors = 0;
    loop {
        match client.request(&characterize) {
            Ok(Response::Characterize(r)) if r.degraded => break, // breaker open
            Ok(Response::Error { .. }) => trip_errors += 1,
            Ok(other) => return Err(format!("unexpected trip reply {other:?}")),
            Err(e) => return Err(format!("trip: {e}")),
        }
        if trip_errors > 8 {
            return Err("breaker never opened".into());
        }
    }

    // Measure the open-breaker steady state, pipelined.
    let batch: Vec<Request> = (0..32).map(|_| characterize.clone()).collect();
    let mut ok_degraded = 0u64;
    let mut errors = 0u64;
    let mut samples = Vec::with_capacity(opts.degraded_requests);
    let t0 = Instant::now();
    let mut sent = 0usize;
    while sent < opts.degraded_requests {
        let n = batch.len().min(opts.degraded_requests - sent);
        let t_batch = Instant::now();
        let responses = client
            .pipeline(&batch[..n])
            .map_err(|e| format!("degraded pipeline: {e}"))?;
        let dt = t_batch.elapsed().as_micros() as u64 / n.max(1) as u64;
        for r in responses {
            match r {
                Response::Characterize(c) if c.degraded => {
                    ok_degraded += 1;
                    samples.push(dt);
                }
                _ => errors += 1,
            }
        }
        sent += n;
    }
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);

    let counters = status_counters(server.addr)?;
    let health = match invmeas_service::call(server.addr, &Request::Health) {
        Ok(Response::Health(h)) => h,
        other => return Err(format!("health: {other:?}")),
    };
    let clean_drain = server.shutdown();
    Ok(DegradedPhase {
        requests: opts.degraded_requests,
        ok_degraded,
        errors,
        throughput_per_sec: ok_degraded as f64 / elapsed,
        latency: Percentiles::from_samples(samples),
        open_breakers: health.open_breakers,
        degraded_responses: counters.degraded_responses,
        clean_drain,
    })
}

// ---------------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------------

fn pct_json(p: &Percentiles) -> Json {
    Json::obj(vec![
        ("p50_us", Json::int(p.p50_us)),
        ("p99_us", Json::int(p.p99_us)),
        ("p999_us", Json::int(p.p999_us)),
        ("max_us", Json::int(p.max_us)),
    ])
}

fn load_json(phase: &LoadPhase) -> Json {
    let r = &phase.report;
    let c = &phase.counters;
    Json::obj(vec![
        ("sent", Json::int(r.sent)),
        ("ok", Json::int(r.ok)),
        ("rejected", Json::int(r.rejected)),
        ("protocol_errors", Json::int(r.protocol_errors)),
        ("submits_ok", Json::int(r.submits_ok)),
        ("elapsed_ms", Json::int(r.elapsed.as_millis() as u64)),
        ("submits_per_sec", Json::Num(round2(r.submits_per_sec))),
        ("requests_per_sec", Json::Num(round2(r.requests_per_sec))),
        ("latency", pct_json(&r.latency)),
        ("clean_drain", Json::Bool(phase.clean_drain)),
        (
            "server_counters",
            Json::obj(vec![
                ("requests", Json::int(c.requests)),
                ("jobs_executed", Json::int(c.jobs_executed)),
                ("busy_rejections", Json::int(c.busy_rejections)),
                ("epoll_wakeups", Json::int(c.epoll_wakeups)),
                ("frames_parsed", Json::int(c.frames_parsed)),
                (
                    "write_backpressure_events",
                    Json::int(c.write_backpressure_events),
                ),
                ("queue_depth_peak", Json::int(c.queue_depth_peak)),
                ("shard_depth_peak", Json::int(c.shard_depth_peak)),
                ("queue_steals", Json::int(c.queue_steals)),
                ("connections_reaped", Json::int(c.connections_reaped)),
            ]),
        ),
    ])
}

fn ladder_json(ladder: &Ladder) -> Json {
    let rungs: Vec<Json> = ladder
        .rungs
        .iter()
        .map(|r| {
            let rss_per_conn = if r.report.ok_within_slo > 0 {
                r.rss_bytes / r.report.ok_within_slo as u64
            } else {
                0
            };
            Json::obj(vec![
                ("target", Json::int(r.target as u64)),
                ("ok_within_slo", Json::int(r.report.ok_within_slo as u64)),
                ("failed", Json::int(r.report.failed as u64)),
                ("ok_rate", Json::Num(round4(r.report.ok_rate))),
                ("latency", pct_json(&r.report.latency)),
                ("rss_bytes", Json::int(r.rss_bytes)),
                ("rss_per_conn_bytes", Json::int(rss_per_conn)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("rungs", Json::Arr(rungs)),
        ("sustained_connections", Json::int(ladder.sustained as u64)),
    ])
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

// ---------------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("__serve") {
        if let Err(e) = serve_child(&args[1..]) {
            eprintln!("bench-service __serve: {e}");
            std::process::exit(1);
        }
        return;
    }
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench-service: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&opts) {
        eprintln!("bench-service: {e}");
        std::process::exit(1);
    }
}

/// The `--cluster` mode: aim the load phase at an already-running mesh,
/// routed client-side to the node serving the benchmark device. Fails on
/// any transport error — forwarding and failover must stay invisible to
/// clients.
fn run_cluster(opts: &Opts) -> Result<(), String> {
    let target = loadgen::resolve_cluster_route(&opts.cluster, "ibmqx4")?;
    eprintln!(
        "bench-service: cluster mode, ibmqx4 served by {target} ({} seeds)",
        opts.cluster.len()
    );
    let report = loadgen::run_load(&LoadConfig {
        addr: target,
        connections: opts.connections,
        requests: opts.requests,
        rate_hz: opts.rate_hz,
        pipeline: opts.pipeline,
        seed: 2019,
        mix: Mix::default(),
        shots: opts.shots,
    })?;
    let counters = status_counters(target)?;
    eprintln!(
        "  {:.0} submits/s, p99 {:.1} ms, {} protocol errors, {} forwards, {} failovers",
        report.submits_per_sec,
        report.latency.p99_us as f64 / 1000.0,
        report.protocol_errors,
        counters.forwards,
        counters.failovers,
    );
    let doc = Json::obj(vec![
        ("schema", Json::str("bench-service-cluster v1")),
        (
            "config",
            Json::obj(vec![
                (
                    "seeds",
                    Json::Arr(
                        opts.cluster
                            .iter()
                            .map(|a| Json::str(a.to_string()))
                            .collect(),
                    ),
                ),
                ("target", Json::str(target.to_string())),
                ("connections", Json::int(opts.connections as u64)),
                ("requests", Json::int(opts.requests as u64)),
                ("rate_hz", Json::Num(opts.rate_hz)),
            ]),
        ),
        ("sent", Json::int(report.sent)),
        ("ok", Json::int(report.ok)),
        ("rejected", Json::int(report.rejected)),
        ("protocol_errors", Json::int(report.protocol_errors)),
        ("submits_per_sec", Json::Num(round2(report.submits_per_sec))),
        ("latency", pct_json(&report.latency)),
        (
            "mesh_counters",
            Json::obj(vec![
                ("forwards", Json::int(counters.forwards)),
                ("replication_writes", Json::int(counters.replication_writes)),
                ("failovers", Json::int(counters.failovers)),
                ("heartbeats_missed", Json::int(counters.heartbeats_missed)),
                ("stale_map_retries", Json::int(counters.stale_map_retries)),
            ]),
        ),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    std::fs::write(&opts.out, &text).map_err(|e| format!("write {}: {e}", opts.out))?;
    println!("{text}");
    if report.protocol_errors > 0 {
        return Err(format!(
            "{} protocol errors against the mesh",
            report.protocol_errors
        ));
    }
    Ok(())
}

fn run(opts: &Opts) -> Result<(), String> {
    if !opts.cluster.is_empty() {
        return run_cluster(opts);
    }
    // Raised limits are inherited by the __serve children, so one call
    // covers client and servers alike. The ladder is clamped to what the
    // fd budget can actually park.
    let (nofile_soft, nofile_hard) =
        invmeas_service::poll::raise_nofile_limit(300_000).unwrap_or((1024, 1024));
    let mut opts = Opts {
        out: opts.out.clone(),
        cluster: Vec::new(),
        ..*opts
    };
    let fd_ceiling = (nofile_soft.saturating_sub(2048) as usize).max(256);
    if opts.ladder_max > fd_ceiling {
        eprintln!(
            "bench-service: clamping ladder to {fd_ceiling} connections (nofile soft limit {nofile_soft})"
        );
        opts.ladder_max = fd_ceiling;
    }
    let opts = &opts;
    eprintln!(
        "bench-service: {} conns × {} requests @ {} req/s (pipeline {}), nofile {}/{}",
        opts.connections, opts.requests, opts.rate_hz, opts.pipeline, nofile_soft, nofile_hard
    );

    eprintln!("phase 1/4: load, event-loop front end");
    let load_new = load_phase(opts, true)?;
    eprintln!(
        "  {:.0} submits/s, p99 {:.1} ms, {} protocol errors",
        load_new.report.submits_per_sec,
        load_new.report.latency.p99_us as f64 / 1000.0,
        load_new.report.protocol_errors
    );

    eprintln!("phase 2/4: load, threaded baseline");
    let load_old = load_phase(opts, false)?;
    eprintln!(
        "  {:.0} submits/s, p99 {:.1} ms, {} protocol errors",
        load_old.report.submits_per_sec,
        load_old.report.latency.p99_us as f64 / 1000.0,
        load_old.report.protocol_errors
    );

    eprintln!(
        "phase 3/4: connection-scaling ladder (SLO {} ms)",
        opts.slo_ms
    );
    let ladder_new = ladder_phase(opts, true)?;
    let ladder_old = ladder_phase(opts, false)?;
    let ratio = if ladder_old.sustained > 0 {
        ladder_new.sustained as f64 / ladder_old.sustained as f64
    } else {
        f64::from(u32::try_from(ladder_new.sustained).unwrap_or(u32::MAX))
    };
    eprintln!(
        "  sustained: event-loop {} vs threaded {} ({}x)",
        ladder_new.sustained, ladder_old.sustained, ratio
    );

    eprintln!("phase 4/4: degraded mode (breaker forced open)");
    let degraded = degraded_phase(opts)?;
    eprintln!(
        "  {:.0} degraded serves/s, open breakers {}",
        degraded.throughput_per_sec, degraded.open_breakers
    );

    let doc = Json::obj(vec![
        ("schema", Json::str("bench-service v1")),
        (
            "config",
            Json::obj(vec![
                ("connections", Json::int(opts.connections as u64)),
                ("requests", Json::int(opts.requests as u64)),
                ("rate_hz", Json::Num(opts.rate_hz)),
                ("pipeline", Json::int(opts.pipeline as u64)),
                ("shots", Json::int(opts.shots)),
                ("ladder_max", Json::int(opts.ladder_max as u64)),
                ("storm_rate_hz", Json::Num(opts.storm_rate_hz)),
                ("slo_ms", Json::int(opts.slo_ms)),
                ("nofile_soft", Json::int(nofile_soft)),
                ("nofile_hard", Json::int(nofile_hard)),
            ]),
        ),
        (
            "load",
            Json::obj(vec![
                ("event_loop", load_json(&load_new)),
                ("threaded", load_json(&load_old)),
            ]),
        ),
        (
            "connection_scaling",
            Json::obj(vec![
                ("event_loop", ladder_json(&ladder_new)),
                ("threaded", ladder_json(&ladder_old)),
                ("sustained_ratio", Json::Num(round2(ratio))),
            ]),
        ),
        (
            "degraded_mode",
            Json::obj(vec![
                ("requests", Json::int(degraded.requests as u64)),
                ("ok_degraded", Json::int(degraded.ok_degraded)),
                ("errors", Json::int(degraded.errors)),
                (
                    "throughput_per_sec",
                    Json::Num(round2(degraded.throughput_per_sec)),
                ),
                ("latency", pct_json(&degraded.latency)),
                ("open_breakers", Json::int(degraded.open_breakers)),
                ("degraded_responses", Json::int(degraded.degraded_responses)),
                ("clean_drain", Json::Bool(degraded.clean_drain)),
            ]),
        ),
        (
            "comparison",
            Json::obj(vec![
                (
                    "sustained_connections_event_loop",
                    Json::int(ladder_new.sustained as u64),
                ),
                (
                    "sustained_connections_threaded",
                    Json::int(ladder_old.sustained as u64),
                ),
                ("sustained_ratio", Json::Num(round2(ratio))),
                // Apples-to-apples rung: both front ends at the *same*
                // connection count (the highest the baseline sustained).
                (
                    "matched_rung_connections",
                    Json::int(ladder_old.sustained as u64),
                ),
                (
                    "p99_us_matched_rung_event_loop",
                    Json::int(ladder_new.p99_at(ladder_old.sustained)),
                ),
                (
                    "p99_us_matched_rung_threaded",
                    Json::int(ladder_old.p99_at(ladder_old.sustained)),
                ),
                // Identical offered load through each front end: the direct
                // old-vs-new request-path comparison.
                (
                    "p99_us_equal_load_event_loop",
                    Json::int(load_new.report.latency.p99_us),
                ),
                (
                    "p99_us_equal_load_threaded",
                    Json::int(load_old.report.latency.p99_us),
                ),
                // "Equal" is judged with a 10 ms absolute allowance: every
                // phase here shares one core between client threads, worker
                // pool, and front end, so single-digit-ms p99 gaps flip sign
                // run to run. The SLO-scale signal (collapse at 100× that)
                // is what separates the front ends; raw p99s are above.
                (
                    "event_loop_p99_equal_or_better",
                    Json::Bool(
                        ladder_new.sustained >= ladder_old.sustained
                            && load_new.report.latency.p99_us
                                <= load_old.report.latency.p99_us + 10_000,
                    ),
                ),
            ]),
        ),
    ]);

    let mut text = doc.to_string();
    text.push('\n');
    std::fs::write(&opts.out, &text).map_err(|e| format!("write {}: {e}", opts.out))?;
    eprintln!("wrote {}", opts.out);
    // Machine-readable copy on stdout for the CI job.
    println!("{text}");
    Ok(())
}
