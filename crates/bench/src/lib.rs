//! # qbenches — benchmark support library
//!
//! The Criterion benchmark targets live in `benches/`; this crate exports
//! small shared helpers for them, plus the [`loadgen`] module driving the
//! `bench-service` service-level load benchmark (`BENCH_service.json`).

#![warn(missing_docs)]

pub mod loadgen;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG for benchmark inputs.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0xBE4C)
}

/// The reduced-scale configuration used by the per-experiment pipeline
/// benches (full paper budgets would make `cargo bench` needlessly long).
pub fn bench_config() -> repro::Config {
    repro::Config {
        scale: 0.02,
        seed: 0xBE4C,
    }
}
