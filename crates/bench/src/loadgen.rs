//! Service load generation (ISSUE 7): a deterministic multi-connection
//! open-loop generator for the mitigation server, used by the
//! `bench-service` binary and the CI `load-smoke` job.
//!
//! Two workloads:
//!
//! * [`run_load`] — request throughput/latency. Every request has a
//!   **scheduled** arrival instant computed up front from `(rate, seed)`;
//!   connections send on schedule (up to a pipeline cap) and latency is
//!   measured **from the scheduled instant**, not the send instant, so a
//!   server that falls behind accrues the queueing delay it caused
//!   (coordinated-omission-aware).
//! * [`run_storm`] — connection scaling. Connections arrive open-loop at
//!   a fixed rate; each must connect *and* complete one `health` round
//!   trip within an SLO of its scheduled arrival, then is parked open for
//!   the rest of the rung. The sustained-connections figure is the
//!   largest rung where (almost) every connection met the SLO.
//!
//! Determinism: the arrival schedule and the request mix are pure
//! functions of the config (splitmix64 over the request index) — reruns
//! issue byte-identical request streams in the same order per connection.

use invmeas_service::{
    CharacterizeRequest, Client, MethodKind, PolicyKind, Request, Response, SubmitRequest,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Request-mix weights (need not sum to anything in particular).
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Weight of `submit` requests (the expensive path).
    pub submit: u32,
    /// Weight of `status` requests (inline, counter snapshot).
    pub status: u32,
    /// Weight of `characterize` requests (cache hits after warm-up).
    pub characterize: u32,
}

impl Default for Mix {
    fn default() -> Self {
        Mix {
            submit: 6,
            status: 2,
            characterize: 2,
        }
    }
}

/// Load-phase configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server to aim at.
    pub addr: SocketAddr,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Aggregate open-loop arrival rate (requests per second).
    pub rate_hz: f64,
    /// Maximum pipelined (sent, unanswered) requests per connection.
    pub pipeline: usize,
    /// Schedule / mix seed.
    pub seed: u64,
    /// Request mix.
    pub mix: Mix,
    /// Shots per submit (small keeps the benchmark about the server, not
    /// the simulator).
    pub shots: u64,
}

/// Latency percentiles in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Percentiles {
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl Percentiles {
    /// Computes percentiles from an unsorted sample set.
    pub fn from_samples(mut samples: Vec<u64>) -> Percentiles {
        if samples.is_empty() {
            return Percentiles::default();
        }
        samples.sort_unstable();
        // Nearest-rank percentile: the smallest sample with at least q of
        // the distribution at or below it.
        let at = |q: f64| {
            let rank = (q * samples.len() as f64).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        Percentiles {
            p50_us: at(0.50),
            p99_us: at(0.99),
            p999_us: at(0.999),
            max_us: *samples.last().expect("nonempty"),
        }
    }
}

/// What [`run_load`] measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Non-error responses.
    pub ok: u64,
    /// Server-side error responses (`4xx`/`5xx`), by far most often `503`.
    pub rejected: u64,
    /// Transport/parse failures — must be zero on a healthy run.
    pub protocol_errors: u64,
    /// `submit` responses among `ok`.
    pub submits_ok: u64,
    /// Wall-clock from first scheduled arrival to last response.
    pub elapsed: Duration,
    /// Completed submits per second of wall-clock.
    pub submits_per_sec: f64,
    /// All completed requests per second of wall-clock.
    pub requests_per_sec: f64,
    /// Latency from *scheduled arrival* to response, all requests.
    pub latency: Percentiles,
}

/// Resolves which mesh node serves `device` right now: asks the first
/// reachable seed for the cluster map with the device's route and returns
/// the first *alive* ladder node (owner, else a promoted follower), which
/// is exactly the client-side routing a cluster-aware load generator
/// needs — submits go straight to the serving node instead of paying a
/// forwarding hop (DESIGN.md §16).
pub fn resolve_cluster_route(seeds: &[SocketAddr], device: &str) -> Result<SocketAddr, String> {
    let mut last_err = String::from("no seeds given");
    for seed in seeds {
        let map = Client::connect(*seed)
            .and_then(|mut c| {
                c.request(&Request::ClusterMap {
                    device: Some(device.to_string()),
                })
            })
            .map_err(|e| format!("cluster-map via {seed}: {e}"));
        let m = match map {
            Ok(Response::ClusterMap(m)) => m,
            Ok(other) => {
                last_err = format!("cluster-map via {seed}: unexpected reply {other:?}");
                continue;
            }
            Err(e) => {
                last_err = e;
                continue;
            }
        };
        let Some(route) = &m.route else {
            last_err = format!("cluster-map via {seed}: no route in reply");
            continue;
        };
        let ladder = std::iter::once(route.owner).chain(route.followers.iter().copied());
        for i in ladder {
            let i = i as usize;
            if m.alive.get(i).copied().unwrap_or(false) {
                return m.members[i]
                    .parse()
                    .map_err(|e| format!("bad member address {:?}: {e}", m.members[i]));
            }
        }
        last_err = format!("whole ladder for {device} is dead as seen from {seed}");
    }
    Err(last_err)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn qasm_5q() -> String {
    qsim::qasm::to_qasm(&qsim::Circuit::basis_state_preparation(
        "11111".parse().expect("bits"),
    ))
}

/// The deterministic request for global index `g` under `cfg`.
fn request_for(cfg: &LoadConfig, qasm: &str, g: usize) -> Request {
    let total = cfg.mix.submit + cfg.mix.status + cfg.mix.characterize;
    let roll = (splitmix64(cfg.seed ^ g as u64) % u64::from(total.max(1))) as u32;
    if roll < cfg.mix.submit {
        Request::Submit(SubmitRequest {
            device: "ibmqx4".into(),
            qasm: qasm.to_string(),
            policy: PolicyKind::Aim,
            shots: cfg.shots,
            // Masked to 32 bits: protocol numbers are f64-backed, so only
            // integers ≤ 2^53 survive the wire exactly.
            seed: splitmix64(cfg.seed.wrapping_add(g as u64)) & 0xFFFF_FFFF,
            expected: None,
            deadline_ms: None,
            fwd: false,
        })
    } else if roll < cfg.mix.submit + cfg.mix.status {
        Request::Status
    } else {
        Request::Characterize(CharacterizeRequest {
            device: "ibmqx4".into(),
            method: MethodKind::Brute,
            shots: 0, // server default: converges on the shared cache entry
            fwd: false,
        })
    }
}

/// Runs the open-loop load phase: `connections` clients, requests dealt
/// round-robin, each sent at its scheduled instant (modulo the pipeline
/// cap), latencies taken against the schedule.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, String> {
    assert!(cfg.connections > 0 && cfg.rate_hz > 0.0 && cfg.pipeline > 0);
    let qasm = qasm_5q();

    // Warm-up, excluded from measurement: the first characterization of the
    // device is a multi-hundred-millisecond cache miss, and at an arrival
    // rate near capacity a cold-start stall that big never drains — every
    // latency would then measure the stall, not the front end.
    let mut warm = Client::connect(cfg.addr).map_err(|e| format!("warm-up connect: {e}"))?;
    warm.request(&Request::Characterize(CharacterizeRequest {
        device: "ibmqx4".into(),
        method: MethodKind::Brute,
        shots: 0,
        fwd: false,
    }))
    .map_err(|e| format!("warm-up characterize: {e}"))?;
    drop(warm);

    let start = Instant::now() + Duration::from_millis(50); // let threads line up
    let interval = Duration::from_secs_f64(1.0 / cfg.rate_hz);

    struct ConnTally {
        ok: u64,
        rejected: u64,
        protocol_errors: u64,
        submits_ok: u64,
        sent: u64,
        latencies_us: Vec<u64>,
        last_response: Option<Instant>,
    }

    let tallies: Vec<Result<ConnTally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|c| {
                let qasm = &qasm;
                scope.spawn(move || -> Result<ConnTally, String> {
                    let client = Client::connect(cfg.addr).map_err(|e| format!("connect: {e}"))?;
                    let (mut sender, mut reader) = client.split();
                    // This connection's slice of the global schedule.
                    let mine: Vec<usize> = (c..cfg.requests).step_by(cfg.connections).collect();
                    let in_flight = AtomicUsize::new(0);
                    let (meta_tx, meta_rx) = std::sync::mpsc::channel::<(Instant, bool)>();

                    // Responses are drained on their own thread the moment
                    // the server writes them. If they were only reaped
                    // between sends, a response could sit unread for up to
                    // `pipeline` send intervals and its measured latency
                    // would be the client's send cadence, not the server.
                    Ok(std::thread::scope(|inner| {
                        let in_flight = &in_flight;
                        let read_half = inner.spawn(move || {
                            let mut tally = ConnTally {
                                ok: 0,
                                rejected: 0,
                                protocol_errors: 0,
                                submits_ok: 0,
                                sent: 0,
                                latencies_us: Vec::new(),
                                last_response: None,
                            };
                            for (sched, was_submit) in meta_rx {
                                match reader.recv() {
                                    Ok(response) => {
                                        let now = Instant::now();
                                        tally.last_response = Some(now);
                                        tally
                                            .latencies_us
                                            .push(now.saturating_duration_since(sched).as_micros()
                                                as u64);
                                        if matches!(response, Response::Error { .. }) {
                                            tally.rejected += 1;
                                        } else {
                                            tally.ok += 1;
                                            if was_submit {
                                                tally.submits_ok += 1;
                                            }
                                        }
                                    }
                                    Err(_) => tally.protocol_errors += 1,
                                }
                                in_flight.fetch_sub(1, Ordering::Release);
                            }
                            tally
                        });

                        let mut sent = 0u64;
                        let mut send_errors = 0u64;
                        for g in mine {
                            let sched = start + interval.mul_f64(g as f64);
                            if let Some(wait) = sched.checked_duration_since(Instant::now()) {
                                std::thread::sleep(wait);
                            }
                            while in_flight.load(Ordering::Acquire) >= cfg.pipeline {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            let request = request_for(cfg, qasm, g);
                            let was_submit = matches!(request, Request::Submit(_));
                            if sender.send(&request).is_err() {
                                send_errors += 1;
                                continue;
                            }
                            sent += 1;
                            in_flight.fetch_add(1, Ordering::Release);
                            let _ = meta_tx.send((sched, was_submit));
                        }
                        drop(meta_tx);
                        let mut tally = read_half.join().expect("reader half panicked");
                        tally.sent = sent;
                        tally.protocol_errors += send_errors;
                        tally
                    }))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });

    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        rejected: 0,
        protocol_errors: 0,
        submits_ok: 0,
        elapsed: Duration::ZERO,
        submits_per_sec: 0.0,
        requests_per_sec: 0.0,
        latency: Percentiles::default(),
    };
    let mut samples: Vec<u64> = Vec::new();
    let mut last: Option<Instant> = None;
    for tally in tallies {
        let t = tally?;
        report.sent += t.sent;
        report.ok += t.ok;
        report.rejected += t.rejected;
        report.protocol_errors += t.protocol_errors;
        report.submits_ok += t.submits_ok;
        samples.extend(t.latencies_us);
        last = match (last, t.last_response) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
    report.elapsed = last.map_or(Duration::ZERO, |l| l.saturating_duration_since(start));
    let secs = report.elapsed.as_secs_f64().max(1e-9);
    report.submits_per_sec = report.submits_ok as f64 / secs;
    report.requests_per_sec = (report.ok + report.rejected) as f64 / secs;
    report.latency = Percentiles::from_samples(samples);
    Ok(report)
}

/// `true` for an error response, `Err` for a transport/protocol failure.
/// Connection-storm configuration for one ladder rung.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Server to aim at.
    pub addr: SocketAddr,
    /// Connections to open this rung.
    pub connections: usize,
    /// Open-loop connection arrival rate (connections per second).
    pub rate_hz: f64,
    /// Budget from scheduled arrival to a completed `health` round trip.
    pub slo: Duration,
    /// Client-side worker threads performing handshakes.
    pub workers: usize,
    /// Closed-loop background connections hammering `submit` for the whole
    /// rung. A storm against an *idle* server flatters thread-per-connection
    /// (blocked threads are cheap); real storms hit servers that are busy,
    /// and it is the accept path under CPU contention that separates the
    /// front ends.
    pub background_connections: usize,
    /// Shots per background submit.
    pub background_shots: u64,
}

/// What [`run_storm`] measured for one rung.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// Connections attempted (== the rung's target).
    pub attempted: usize,
    /// Connections whose connect + `health` round trip landed inside the
    /// SLO, and which were then held open to the end of the rung.
    pub ok_within_slo: usize,
    /// Connect/read failures or timeouts.
    pub failed: usize,
    /// Fraction of `attempted` inside the SLO.
    pub ok_rate: f64,
    /// Round-trip latency from scheduled arrival, successful conns only.
    pub latency: Percentiles,
}

/// Runs one connection-storm rung: `connections` arrivals at `rate_hz`,
/// each graded against `slo` and parked open until every arrival has been
/// graded (so the server really holds them all concurrently). While the
/// storm runs, `background_connections` closed-loop clients keep the
/// server's workers saturated with submits. `on_held` fires at peak
/// concurrency — after the last arrival is graded, before any parked
/// connection closes — which is where the caller samples the server's RSS.
pub fn run_storm(cfg: &StormConfig, on_held: impl FnOnce()) -> StormReport {
    let start = Instant::now() + Duration::from_millis(50);
    let interval = Duration::from_secs_f64(1.0 / cfg.rate_hz);
    let next = AtomicUsize::new(0);
    let parked: Mutex<Vec<std::net::TcpStream>> = Mutex::new(Vec::new());
    let ok = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let health_line = format!("{}\n", Request::Health.to_line());
    let stop = std::sync::atomic::AtomicBool::new(false);
    let qasm = qasm_5q();
    // ~16k connections per loopback source IP leaves comfortable headroom
    // under the ~28k ephemeral ports each (src, dst) pair offers.
    let src_ips = (cfg.connections / 16_000 + 1).min(250);

    std::thread::scope(|scope| {
        for b in 0..cfg.background_connections {
            let stop = &stop;
            let qasm = &qasm;
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(cfg.addr) else {
                    return;
                };
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let submit = Request::Submit(SubmitRequest {
                        device: "ibmqx4".into(),
                        qasm: qasm.to_string(),
                        policy: PolicyKind::Aim,
                        shots: cfg.background_shots,
                        seed: splitmix64((b as u64) << 32 | n) & 0xFFFF_FFFF,
                        expected: None,
                        deadline_ms: None,
                        fwd: false,
                    });
                    n += 1;
                    if client.request(&submit).is_err() {
                        return; // server gone; the rung is ending anyway
                    }
                }
            });
        }
        for _ in 0..cfg.workers.max(1) {
            scope.spawn(|| {
                use std::io::{BufRead, BufReader, Write};
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cfg.connections {
                        return;
                    }
                    let sched = start + interval.mul_f64(i as f64);
                    if let Some(wait) = sched.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let verdict = (|| -> std::io::Result<std::net::TcpStream> {
                        // Spread the storm across loopback source IPs: one
                        // (src, dst) pair caps at ~28k ephemeral ports, far
                        // below what the event loop can hold.
                        let stream = match cfg.addr {
                            SocketAddr::V4(dst) if dst.ip().is_loopback() => {
                                let src =
                                    std::net::Ipv4Addr::new(127, 0, 0, 2 + (i % src_ips) as u8);
                                invmeas_service::poll::connect_from(src, dst, cfg.slo)?
                            }
                            other => std::net::TcpStream::connect_timeout(&other, cfg.slo)?,
                        };
                        stream.set_nodelay(true).ok();
                        stream.set_read_timeout(Some(cfg.slo + Duration::from_millis(500)))?;
                        stream.set_write_timeout(Some(cfg.slo))?;
                        let mut w = stream.try_clone()?;
                        w.write_all(health_line.as_bytes())?;
                        let mut line = String::new();
                        BufReader::new(&stream).read_line(&mut line)?;
                        if line.is_empty() {
                            return Err(std::io::Error::other("closed before response"));
                        }
                        Ok(stream)
                    })();
                    let elapsed = Instant::now().saturating_duration_since(sched);
                    match verdict {
                        Ok(stream) if elapsed <= cfg.slo => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            samples.lock().unwrap().push(elapsed.as_micros() as u64);
                            // Park it open: the rung's whole point is that
                            // the server holds every one concurrently.
                            parked.lock().unwrap().push(stream);
                        }
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // Background clients run until every arrival has been graded.
        while ok.load(Ordering::Relaxed) + failed.load(Ordering::Relaxed) < cfg.connections {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Every arrival has been graded and the survivors are all still open.
    on_held();
    // The parked sockets close when `parked` drops at the end of this
    // function.
    let ok_within_slo = ok.load(Ordering::Relaxed);
    StormReport {
        attempted: cfg.connections,
        ok_within_slo,
        failed: failed.load(Ordering::Relaxed),
        ok_rate: ok_within_slo as f64 / cfg.connections.max(1) as f64,
        latency: Percentiles::from_samples(samples.into_inner().unwrap()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_and_mix_are_deterministic() {
        let cfg = LoadConfig {
            addr: "127.0.0.1:1".parse().unwrap(),
            connections: 4,
            requests: 64,
            rate_hz: 1000.0,
            pipeline: 4,
            seed: 42,
            mix: Mix::default(),
            shots: 100,
        };
        let qasm = qasm_5q();
        let a: Vec<String> = (0..64)
            .map(|g| request_for(&cfg, &qasm, g).to_line())
            .collect();
        let b: Vec<String> = (0..64)
            .map(|g| request_for(&cfg, &qasm, g).to_line())
            .collect();
        assert_eq!(a, b, "same seed ⇒ same request stream");
        let submits = a.iter().filter(|l| l.contains("\"op\":\"submit\"")).count();
        assert!(submits > 20 && submits < 60, "mix holds roughly: {submits}");
    }

    #[test]
    fn percentiles_rank_correctly() {
        let p = Percentiles::from_samples((1..=1000).rev().collect());
        assert_eq!(p.p50_us, 500);
        assert_eq!(p.p99_us, 990);
        assert_eq!(p.p999_us, 999);
        assert_eq!(p.max_us, 1000);
        assert_eq!(Percentiles::from_samples(vec![]).max_us, 0);
    }
}
