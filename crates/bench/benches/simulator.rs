//! Simulator substrate performance: state-vector gate application,
//! Born-rule sampling, and readout-channel throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qbenches::bench_rng;
use qnoise::{DeviceModel, ReadoutModel};
use qsim::{BitString, Circuit, StateVector};

/// A representative layered circuit: H wall, CX chain, Rz layer, repeated.
fn layered_circuit(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        for q in 0..n {
            c.rz(q, 0.37);
        }
    }
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for n in [5usize, 8, 11, 14] {
        let circuit = layered_circuit(n, 4);
        group.throughput(Throughput::Elements(circuit.len() as u64));
        group.bench_with_input(BenchmarkId::new("apply_circuit", n), &circuit, |b, circ| {
            b.iter(|| StateVector::from_circuit(circ))
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    for n in [5usize, 10, 14] {
        let psi = StateVector::from_circuit(&Circuit::uniform_superposition(n));
        group.throughput(Throughput::Elements(1024));
        group.bench_with_input(BenchmarkId::new("born_samples", n), &psi, |b, psi| {
            let mut rng = bench_rng();
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..1024 {
                    acc ^= psi.sample(&mut rng).value();
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_readout_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("readout");
    let dev = DeviceModel::ibmq_melbourne();
    let readout = dev.readout();
    let ideal = BitString::ones(14);
    group.throughput(Throughput::Elements(1024));
    group.bench_function("corrupt_14q_x1024", |b| {
        let mut rng = bench_rng();
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1024 {
                acc ^= readout.corrupt(ideal, &mut rng).value();
            }
            acc
        })
    });
    group.bench_function("exact_confusion_row_14q", |b| {
        b.iter(|| readout.success_probability(ideal))
    });
    let qx2 = DeviceModel::ibmqx2().readout();
    let dist = qsim::Distribution::uniform(5);
    group.bench_function("push_distribution_5q", |b| {
        b.iter(|| qx2.apply_to_distribution(&dist))
    });
    group.finish();
}

criterion_group!(benches, bench_statevector, bench_sampling, bench_readout_channel);
criterion_main!(benches);
