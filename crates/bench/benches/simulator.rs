//! Simulator substrate performance: state-vector gate application,
//! Born-rule sampling, and readout-channel throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qbenches::bench_rng;
use qnoise::{DeviceModel, ReadoutModel};
use qsim::{BitString, Circuit, Distribution, FusedProgram, StateVector};

/// A representative layered circuit: H wall, CX chain, Rz layer, repeated.
fn layered_circuit(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        for q in 0..n {
            c.rz(q, 0.37);
        }
    }
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for n in [5usize, 8, 11, 14] {
        let circuit = layered_circuit(n, 4);
        group.throughput(Throughput::Elements(circuit.len() as u64));
        group.bench_with_input(BenchmarkId::new("apply_circuit", n), &circuit, |b, circ| {
            b.iter(|| StateVector::from_circuit(circ))
        });
    }
    // Unfused gate-by-gate reference at the largest width: the headline
    // speedup is apply_circuit/14 vs this baseline.
    let circuit = layered_circuit(14, 4);
    group.throughput(Throughput::Elements(circuit.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("apply_unfused", 14),
        &circuit,
        |b, circ| {
            b.iter(|| {
                let mut sv = StateVector::zero(circ.n_qubits());
                sv.apply_circuit(circ);
                sv
            })
        },
    );
    group.finish();
}

fn bench_threaded_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded");
    for n in [14usize, 16, 18, 20] {
        let prog = FusedProgram::from_circuit(&layered_circuit(n, 4));
        group.throughput(Throughput::Elements(prog.n_ops() as u64));
        if n >= 18 {
            group.sample_size(10);
        }
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("apply_fused_{n}q"), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let mut sv = StateVector::zero(n);
                        sv.apply_fused_threaded(&prog, threads);
                        sv.recycle();
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_variant_amortization(c: &mut Criterion) {
    let mut group = c.benchmark_group("variants");
    let n = 14usize;
    let base = layered_circuit(n, 4);
    let mask = BitString::ones(n);
    // Naive: re-simulate the inverted variant end to end.
    group.bench_function("resimulate_14q", |b| {
        let inverted = base.with_premeasure_inversion(mask);
        b.iter(|| StateVector::from_circuit(&inverted).probabilities())
    });
    // Amortized: one base distribution, XOR-permuted per variant.
    let dist = Distribution::from_probabilities(n, StateVector::born_probabilities(&base));
    group.bench_function("permute_xor_14q", |b| b.iter(|| dist.permute_xor(mask)));
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    for n in [5usize, 10, 14] {
        let psi = StateVector::from_circuit(&Circuit::uniform_superposition(n));
        group.throughput(Throughput::Elements(1024));
        group.bench_with_input(BenchmarkId::new("born_samples", n), &psi, |b, psi| {
            let mut rng = bench_rng();
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..1024 {
                    acc ^= psi.sample(&mut rng).value();
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_readout_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("readout");
    let dev = DeviceModel::ibmq_melbourne();
    let readout = dev.readout();
    let ideal = BitString::ones(14);
    group.throughput(Throughput::Elements(1024));
    group.bench_function("corrupt_14q_x1024", |b| {
        let mut rng = bench_rng();
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1024 {
                acc ^= readout.corrupt(ideal, &mut rng).value();
            }
            acc
        })
    });
    group.bench_function("exact_confusion_row_14q", |b| {
        b.iter(|| readout.success_probability(ideal))
    });
    let qx2 = DeviceModel::ibmqx2().readout();
    let dist = qsim::Distribution::uniform(5);
    group.bench_function("push_distribution_5q", |b| {
        b.iter(|| qx2.apply_to_distribution(&dist))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_threaded_apply,
    bench_variant_amortization,
    bench_sampling,
    bench_readout_channel
);
criterion_main!(benches);
