//! One benchmark per paper table/figure: times the full regeneration
//! pipeline of each artifact at reduced shot scale.
//!
//! `cargo bench -p qbenches --bench experiments` re-runs every reproduction
//! pipeline; `cargo run -p repro -- <id>` prints the corresponding rows.

use criterion::{criterion_group, criterion_main, Criterion};
use qbenches::bench_config;
use repro::experiments;

fn bench_experiments(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    for (id, _) in experiments::ALL_EXPERIMENTS {
        group.bench_function(*id, |b| {
            b.iter(|| {
                let out = experiments::run(id, &cfg).expect("known experiment id");
                assert!(!out.is_empty());
                out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
