//! Shot-execution engine benchmarks: per-shot reference vs the batched
//! engine (alias-table sampling + exact-channel shot synthesis).
//!
//! The headline comparison is the acceptance target of the batched-engine
//! work: readout-only 5-qubit brute-force characterization at 8192
//! shots/state, per-shot vs synthesized. Set `CRITERION_JSON=<path>` to
//! record the timings (see `BENCH_sampler.json` at the repo root).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use invmeas::RbmsTable;
use qbenches::bench_rng;
use qnoise::{DeviceModel, Executor, NoisyExecutor};
use qsim::{Circuit, StateVector};

const SHOTS_PER_STATE: u64 = 8_192;

/// Per-shot reference vs batched engine on the acceptance workload:
/// 5-qubit readout-only brute-force characterization, 8192 shots/state.
fn bench_brute_force_paths(c: &mut Criterion) {
    let dev = DeviceModel::ibmqx2();
    let per_shot = NoisyExecutor::readout_only(&dev)
        .with_shot_synthesis(false)
        .with_threads(1);
    let batched = NoisyExecutor::readout_only(&dev).with_threads(1);

    let mut group = c.benchmark_group("brute_force_5q_8192");
    group.sample_size(10);
    group.throughput(Throughput::Elements(32 * SHOTS_PER_STATE));
    group.bench_function("per_shot", |b| {
        let mut rng = bench_rng();
        b.iter(|| RbmsTable::brute_force(&per_shot, SHOTS_PER_STATE, &mut rng))
    });
    group.bench_function("batched", |b| {
        let mut rng = bench_rng();
        b.iter(|| RbmsTable::brute_force(&batched, SHOTS_PER_STATE, &mut rng))
    });
    group.finish();
}

/// Raw sampling throughput: alias table vs linear scan over the state
/// vector, per shot, on a dense superposition.
fn bench_sampling_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("born_sampling");
    for n in [5usize, 10, 14] {
        let psi = StateVector::from_circuit(&Circuit::uniform_superposition(n));
        let sampler = psi.sampler();
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &psi, |b, psi| {
            let mut rng = bench_rng();
            b.iter(|| psi.sample(&mut rng))
        });
        group.bench_with_input(BenchmarkId::new("alias_table", n), &sampler, |b, s| {
            let mut rng = bench_rng();
            b.iter(|| s.sample(&mut rng))
        });
    }
    group.finish();
}

/// Shot-count scaling of one readout-only execution: the synthesized
/// path should be flat in shots, the per-shot path linear.
fn bench_shot_scaling(c: &mut Criterion) {
    let dev = DeviceModel::ibmqx4();
    let circuit = Circuit::basis_state_preparation("10110".parse().unwrap());
    let synth = NoisyExecutor::readout_only(&dev);
    let per_shot = NoisyExecutor::readout_only(&dev).with_shot_synthesis(false);

    let mut group = c.benchmark_group("shot_scaling");
    group.sample_size(10);
    for shots in [1_024u64, 8_192, 65_536] {
        group.throughput(Throughput::Elements(shots));
        group.bench_with_input(BenchmarkId::new("per_shot", shots), &shots, |b, &shots| {
            let mut rng = bench_rng();
            b.iter(|| per_shot.run(&circuit, shots, &mut rng))
        });
        group.bench_with_input(
            BenchmarkId::new("synthesized", shots),
            &shots,
            |b, &shots| {
                let mut rng = bench_rng();
                b.iter(|| synth.run(&circuit, shots, &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_brute_force_paths,
    bench_sampling_paths,
    bench_shot_scaling
);
criterion_main!(benches);
