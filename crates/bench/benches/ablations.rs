//! Ablation benches for the design choices called out in DESIGN.md §5.
//!
//! Criterion times each variant; in addition, each ablation prints its
//! *quality* outcome (bias, PST) once at setup, so `cargo bench` output
//! doubles as the ablation study record.

use criterion::{criterion_group, criterion_main, Criterion};
use invmeas::{
    AdaptiveInvertMeasure, InversionString, MeasurementPolicy, RbmsTable, StaticInvertMeasure,
};
use qbenches::bench_rng;
use qnoise::{
    CorrelatedReadout, DeviceModel, Executor, NoisyExecutor, ReadoutModel, TensorReadout,
};
use qsim::{BitString, Circuit};

/// DESIGN.md ✦ `ablate_damping`: how much of the Hamming-weight bias comes
/// from T1 relaxation during the measurement window versus discriminator
/// asymmetry alone.
fn ablate_damping(c: &mut Criterion) {
    let dev = DeviceModel::ibmqx2();
    let with = dev.readout();
    let without = CorrelatedReadout::from_tensor(TensorReadout::new(
        (0..dev.n_qubits())
            .map(|q| dev.qubit(q).assignment)
            .collect(),
    ));
    let rel = |r: &dyn ReadoutModel| {
        r.success_probability(BitString::ones(5)) / r.success_probability(BitString::zeros(5))
    };
    eprintln!(
        "[ablate_damping] relative BMS(11111): with damping {:.3}, without {:.3}",
        rel(&with),
        rel(&without)
    );
    let mut group = c.benchmark_group("ablate_damping");
    group.bench_function("with_damping", |b| b.iter(|| RbmsTable::exact(&with)));
    group.bench_function("without_damping", |b| b.iter(|| RbmsTable::exact(&without)));
    group.finish();
}

/// DESIGN.md ✦ `ablate_correlation`: readout crosstalk is what makes
/// ibmqx4's bias non-monotone in Hamming weight.
fn ablate_correlation(c: &mut Criterion) {
    let dev = DeviceModel::ibmqx4();
    let with = dev.readout();
    let without = CorrelatedReadout::from_tensor(with.base().clone());
    let corr = |r: &CorrelatedReadout| RbmsTable::exact(r).hamming_correlation();
    eprintln!(
        "[ablate_correlation] ibmqx4 weight correlation: with crosstalk {:.3}, without {:.3}",
        corr(&with),
        corr(&without)
    );
    let mut group = c.benchmark_group("ablate_correlation");
    group.bench_function("with_crosstalk", |b| b.iter(|| RbmsTable::exact(&with)));
    group.bench_function("without_crosstalk", |b| {
        b.iter(|| RbmsTable::exact(&without))
    });
    group.finish();
}

/// DESIGN.md ✦ `ablate_sim_modes`: PST of the weakest state under 1, 2, 4,
/// and 8 inversion strings (the paper chose 4).
fn ablate_sim_modes(c: &mut Criterion) {
    let dev = DeviceModel::ibmqx2();
    let exec = NoisyExecutor::readout_only(&dev);
    let ones = BitString::ones(5);
    let circuit = Circuit::basis_state_preparation(ones);
    let shots = 16_000;

    // Eight strings: the four paper strings plus four quarter-weight masks.
    let mut eight = InversionString::sim_four(5);
    for mask in ["00110", "11001", "01100", "10011"] {
        eight.push(InversionString::from_mask(mask.parse().expect("valid")));
    }
    let variants: Vec<(&str, StaticInvertMeasure)> = vec![
        (
            "modes1",
            StaticInvertMeasure::new(vec![InversionString::standard(5)]),
        ),
        ("modes2", StaticInvertMeasure::two_mode(5)),
        ("modes4", StaticInvertMeasure::four_mode(5)),
        ("modes8", StaticInvertMeasure::new(eight)),
    ];
    for (name, sim) in &variants {
        let mut rng = bench_rng();
        let log = sim.execute(&circuit, shots, &exec, &mut rng);
        eprintln!(
            "[ablate_sim_modes] {name}: PST of 11111 = {:.3}",
            log.frequency(&ones)
        );
    }
    let mut group = c.benchmark_group("ablate_sim_modes");
    group.sample_size(20);
    for (name, sim) in &variants {
        group.bench_function(*name, |b| {
            let mut rng = bench_rng();
            b.iter(|| sim.execute(&circuit, 2_048, &exec, &mut rng))
        });
    }
    group.finish();
}

/// DESIGN.md ✦ `ablate_aim_budget`: AIM's canary fraction (paper: 25 %) and
/// candidate count k (paper: 4).
fn ablate_aim_budget(c: &mut Criterion) {
    let dev = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::readout_only(&dev);
    let profile = RbmsTable::exact(&dev.readout());
    let target: BitString = "11011".parse().expect("valid");
    let circuit = Circuit::basis_state_preparation(target);
    let shots = 16_000;

    let variants: Vec<(String, AdaptiveInvertMeasure)> = [0.10, 0.25, 0.50]
        .into_iter()
        .map(|f| {
            (
                format!("canary{}", (f * 100.0) as u32),
                AdaptiveInvertMeasure::new(profile.clone()).with_canary_fraction(f),
            )
        })
        .chain([1usize, 2, 4, 8].into_iter().map(|k| {
            (
                format!("k{k}"),
                AdaptiveInvertMeasure::new(profile.clone()).with_k(k),
            )
        }))
        .collect();
    for (name, aim) in &variants {
        let mut rng = bench_rng();
        let log = aim.execute(&circuit, shots, &exec, &mut rng);
        eprintln!(
            "[ablate_aim_budget] {name}: PST of {target} = {:.3}",
            log.frequency(&target)
        );
    }
    let mut group = c.benchmark_group("ablate_aim_budget");
    group.sample_size(20);
    for (name, aim) in &variants {
        group.bench_function(name.as_str(), |b| {
            let mut rng = bench_rng();
            b.iter(|| aim.execute(&circuit, 2_048, &exec, &mut rng))
        });
    }
    group.finish();
}

/// Gate-noise trajectory cap: correctness/cost knob of the executor.
fn ablate_trajectory_cap(c: &mut Criterion) {
    let dev = DeviceModel::ibmq_melbourne().best_qubits_subdevice(7);
    let bench = qworkloads::Benchmark::bv("bv-6", "011111".parse().expect("valid"));
    let mut group = c.benchmark_group("ablate_trajectory_cap");
    group.sample_size(10);
    for cap in [64u64, 512, 4096] {
        let exec = NoisyExecutor::from_device(&dev).with_max_trajectories(cap);
        let mut rng = bench_rng();
        let log = exec.run(bench.circuit(), 8_192, &mut rng);
        eprintln!(
            "[ablate_trajectory_cap] cap {cap}: PST = {:.3}",
            qmetrics::pst(&log, bench.correct())
        );
        group.bench_function(format!("cap{cap}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| exec.run(bench.circuit(), 2_048, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_damping,
    ablate_correlation,
    ablate_sim_modes,
    ablate_aim_budget,
    ablate_trajectory_cap
);
criterion_main!(benches);
