//! Characterization-cost scaling: the Appendix-A claim that AWCT's trial
//! count scales with the window size `O(2^m)` while brute force scales with
//! the register `O(2^n)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use invmeas::RbmsTable;
use qbenches::bench_rng;
use qnoise::{DeviceModel, NoisyExecutor};

/// Shots chosen so each technique reaches comparable statistical quality on
/// its own terms; the scaling *shape* across n is what matters.
const SHOTS_PER_STATE: u64 = 256;
const SHOTS_PER_WINDOW: u64 = 4_096;
const ESCT_SHOTS: u64 = 16_384;

fn subdevice(n: usize) -> NoisyExecutor {
    let dev = DeviceModel::ibmq_melbourne().best_qubits_subdevice(n);
    NoisyExecutor::readout_only(&dev)
}

fn bench_characterization_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterization_scaling");
    group.sample_size(10);
    for n in [5usize, 7, 9, 11] {
        let exec = subdevice(n);
        group.bench_with_input(BenchmarkId::new("brute_force", n), &exec, |b, exec| {
            let mut rng = bench_rng();
            b.iter(|| RbmsTable::brute_force(exec, SHOTS_PER_STATE, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("esct", n), &exec, |b, exec| {
            let mut rng = bench_rng();
            b.iter(|| RbmsTable::esct(exec, ESCT_SHOTS, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("awct_m4", n), &exec, |b, exec| {
            let mut rng = bench_rng();
            b.iter(|| RbmsTable::awct(exec, 4, 2, SHOTS_PER_WINDOW, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_characterization_scaling);
criterion_main!(benches);
