//! Measurement-policy execution cost: what running a fixed trial budget
//! costs under baseline, SIM, and AIM. The paper's policies never run extra
//! trials, so their overhead is circuit transformation + bookkeeping only —
//! these benches verify that the overhead stays marginal.

use criterion::{criterion_group, criterion_main, Criterion};
use invmeas::{AdaptiveInvertMeasure, Baseline, MeasurementPolicy, RbmsTable, StaticInvertMeasure};
use qbenches::bench_rng;
use qnoise::{DeviceModel, NoisyExecutor};
use qworkloads::Benchmark;

const SHOTS: u64 = 4_096;

fn bench_policies(c: &mut Criterion) {
    let dev = DeviceModel::ibmqx4();
    let exec = NoisyExecutor::from_device(&dev);
    let bench = Benchmark::bv("bv-4B", "1111".parse().expect("valid"));
    let profile = RbmsTable::exact(&dev.readout());

    let mut group = c.benchmark_group("policy_execution");
    group.sample_size(20);
    let policies: Vec<(&str, Box<dyn MeasurementPolicy>)> = vec![
        ("baseline", Box::new(Baseline)),
        ("sim2", Box::new(StaticInvertMeasure::two_mode(5))),
        ("sim4", Box::new(StaticInvertMeasure::four_mode(5))),
        ("aim", Box::new(AdaptiveInvertMeasure::new(profile.clone()))),
    ];
    for (name, policy) in &policies {
        group.bench_function(*name, |b| {
            let mut rng = bench_rng();
            b.iter(|| policy.execute(bench.circuit(), SHOTS, &exec, &mut rng))
        });
    }
    group.finish();

    // Parallel execution scaling: the same trial budget across worker
    // threads.
    let mut par = c.benchmark_group("parallel_execution");
    par.sample_size(10);
    let big_shots = 32_768u64;
    for threads in [1usize, 2, 4, 8] {
        par.bench_function(format!("threads{threads}"), |b| {
            let mut rng = bench_rng();
            b.iter(|| exec.run_parallel(bench.circuit(), big_shots, threads, &mut rng))
        });
    }
    par.finish();

    // Profiling cost (AIM's offline phase), which the online benches above
    // exclude: brute force vs the executor-cheap exact path.
    let mut offline = c.benchmark_group("aim_offline_profile");
    offline.sample_size(10);
    offline.bench_function("brute_force_5q_512shots", |b| {
        let mut rng = bench_rng();
        b.iter(|| RbmsTable::brute_force(&exec, 512, &mut rng))
    });
    offline.bench_function("exact_channel_5q", |b| {
        let readout = dev.readout();
        b.iter(|| RbmsTable::exact(&readout))
    });
    offline.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
